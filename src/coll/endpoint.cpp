#include "src/coll/communicator.hpp"

namespace mccl::coll {

namespace {
constexpr std::size_t kCtrlRecvCredits = 512;
}

Endpoint::Endpoint(Communicator& comm, std::size_t rank, fabric::NodeId host)
    : comm_(comm),
      rank_(rank),
      host_(host),
      nic_(comm.cluster().nic(static_cast<std::size_t>(host))),
      cpu_costs_(exec::cpu_costs()) {
  if (comm.config().costs_override) {
    costs_ = *comm.config().costs_override;
  } else {
    costs_ = comm.config().progress_engine == EngineKind::kDpa
                 ? exec::dpa_costs()
                 : exec::cpu_costs();
  }
  const EngineKind send_kind =
      comm.config().send_engine.value_or(comm.config().progress_engine);
  if (comm.config().costs_override &&
      send_kind == comm.config().progress_engine) {
    send_costs_ = *comm.config().costs_override;
  } else {
    send_costs_ = send_kind == EngineKind::kDpa ? exec::dpa_costs()
                                                : exec::cpu_costs();
  }
}

void Endpoint::setup_workers() {
  Cluster& cl = comm_.cluster();
  const std::size_t h = static_cast<std::size_t>(host_);
  app_worker_ = &cl.cpu(h).create_worker();
  const EngineKind send_kind =
      comm_.config().send_engine.value_or(comm_.config().progress_engine);
  exec::Complex& send_complex =
      send_kind == EngineKind::kDpa ? cl.dpa(h) : cl.cpu(h);
  exec::Complex& recv_complex =
      comm_.config().progress_engine == EngineKind::kDpa ? cl.dpa(h)
                                                         : cl.cpu(h);
  // Receive workers first: the compact co-location study (Section VI-C)
  // measures *receive* threads filling cores from core 0.
  for (std::size_t i = 0; i < comm_.config().recv_workers; ++i)
    recv_workers_.push_back(&recv_complex.create_worker());
  for (std::size_t i = 0; i < comm_.config().send_workers; ++i)
    send_workers_.push_back(&send_complex.create_worker());

  // Trace rows: one process group per rank, one thread row per worker plus
  // a "protocol" row for the per-phase collective spans.
  telemetry::Tracer& tracer = cl.telemetry().tracer;
  const auto pid = static_cast<std::int64_t>(rank_);
  const std::string pname = "rank " + std::to_string(rank_);
  trace_track_ = tracer.track(pid, pname, 0, "protocol");
  app_worker_->set_trace(&tracer, tracer.track(pid, pname, 1, "app"));
  std::int64_t tid = 2;
  for (std::size_t i = 0; i < recv_workers_.size(); ++i)
    recv_workers_[i]->set_trace(
        &tracer,
        tracer.track(pid, pname, tid++, "recv " + std::to_string(i)));
  for (std::size_t i = 0; i < send_workers_.size(); ++i)
    send_workers_[i]->set_trace(
        &tracer,
        tracer.track(pid, pname, tid++, "send " + std::to_string(i)));

  ctrl_rcq_ = &nic_.create_cq();
  data_rcq_ = &nic_.create_cq();
  data_scq_ = &nic_.create_cq();
  app_worker_->subscribe(
      *ctrl_rcq_, [this](const rdma::Cqe& cqe) { on_ctrl_cqe(cqe); },
      cpu_costs_.control);
  app_worker_->subscribe(
      *data_rcq_, [this](const rdma::Cqe& cqe) { on_data_cqe(cqe); },
      cpu_costs_.control);
  app_worker_->subscribe(
      *data_scq_, [this](const rdma::Cqe& cqe) { on_data_send_cqe(cqe); },
      cpu_costs_.control);
}

void Endpoint::setup_subgroups() {
  const CommConfig& cfg = comm_.config();
  subgroups_.resize(cfg.subgroups);
  for (std::size_t s = 0; s < cfg.subgroups; ++s) {
    Subgroup& g = subgroups_[s];
    g.rcq = &nic_.create_cq();
    g.scq = &nic_.create_cq();
    const fabric::McastGroupId group = comm_.subgroup_group(s);
    if (cfg.transport == Transport::kUd) {
      g.ud = &nic_.create_ud_qp(g.scq, g.rcq);
      comm_.tag_qp(*g.ud, /*ctrl=*/false);
      nic_.attach_ud_mcast(group, *g.ud);
      // Staging ring: `staging_slots` chunk-sized slots, pre-posted; a slot
      // returns to the RQ once its DMA copy to the user buffer drains.
      g.staging_base =
          nic_.memory().alloc(static_cast<std::uint64_t>(cfg.staging_slots) *
                              cfg.chunk_bytes);
      for (std::size_t i = 0; i < cfg.staging_slots; ++i) {
        const std::uint64_t slot =
            g.staging_base + static_cast<std::uint64_t>(i) * cfg.chunk_bytes;
        g.ud->post_recv({.wr_id = slot, .laddr = slot,
                         .len = cfg.chunk_bytes});
      }
      g.posted = cfg.staging_slots;
    } else {
      g.uc = &nic_.create_uc_qp(g.scq, g.rcq);
      comm_.tag_qp(*g.uc, /*ctrl=*/false);
      nic_.attach_uc_mcast(group, *g.uc);
      g.uc->set_mcast_destination(group);
      for (std::size_t i = 0; i < cfg.staging_slots; ++i)
        g.uc->post_recv({});
      g.posted = cfg.staging_slots;
    }

    // Flow-direction parallelism: receive workers own subgroup receive CQs,
    // send workers own subgroup send CQs.
    const exec::Cost recv_cost = cfg.transport == Transport::kUd
                                     ? costs_.recv_chunk_ud
                                     : costs_.recv_chunk_uc;
    recv_worker(s).subscribe(
        *g.rcq,
        [this, s](const rdma::Cqe& cqe) { on_chunk_cqe(s, cqe); },
        recv_cost);
    send_worker(s).subscribe(
        *g.scq,
        [this, s](const rdma::Cqe& cqe) { on_chunk_cqe(s, cqe); },
        send_costs_.doorbell);
  }
}

double Endpoint::link_gbps() const {
  const auto& ports = comm_.cluster().fabric().topology().ports(host_);
  MCCL_CHECK(!ports.empty());
  return ports.front().params.gbps;
}

void Endpoint::ctrl_send(std::size_t peer, const CtrlMsg& msg) {
  const std::uint32_t imm = encode_ctrl(msg);
  app_worker_->post(cpu_costs_.control, [this, peer, imm] {
    rdma::SendFlags flags;
    flags.imm = imm;
    flags.has_imm = true;
    flags.signaled = false;
    comm_.ctrl_qp(rank_, peer).post_send(0, 0, flags);
  });
}

void Endpoint::register_ctrl(std::uint16_t op, CtrlHandler handler) {
  ctrl_handlers_[op] = std::move(handler);
}

void Endpoint::unregister_ctrl(std::uint16_t op) { ctrl_handlers_.erase(op); }

rdma::RcQp& Endpoint::data_qp(std::size_t peer) {
  return comm_.data_qp(rank_, peer);
}

void Endpoint::register_read_handler(
    std::uint16_t op, std::function<void(const rdma::Cqe&)> handler) {
  read_handlers_[op] = std::move(handler);
}

void Endpoint::unregister_read_handler(std::uint16_t op) {
  read_handlers_.erase(op);
}

void Endpoint::register_mcast_op(std::uint8_t tag, ChunkHandler handler) {
  mcast_ops_[tag] = std::move(handler);
}

void Endpoint::unregister_mcast_op(std::uint8_t tag) {
  mcast_ops_.erase(tag);
}

void Endpoint::repost_staging(std::size_t subgroup, std::uint64_t slot_addr) {
  Subgroup& g = subgroups_[subgroup];
  MCCL_CHECK(g.ud != nullptr);
  g.ud->post_recv({.wr_id = slot_addr, .laddr = slot_addr,
                   .len = comm_.config().chunk_bytes});
  ++g.posted;
}

void Endpoint::top_up_uc_recvs(std::size_t subgroup) {
  Subgroup& g = subgroups_[subgroup];
  MCCL_CHECK(g.uc != nullptr);
  while (g.posted < comm_.config().staging_slots) {
    g.uc->post_recv({});
    ++g.posted;
  }
}

std::uint64_t Endpoint::rnr_drops() const { return nic_.ud_rnr_drops(); }

void Endpoint::on_ctrl_cqe(const rdma::Cqe& cqe) {
  // Recycle the consumed control-receive credit.
  rdma::Qp* qp = nic_.find_qp(cqe.qpn);
  MCCL_CHECK(qp != nullptr);
  qp->post_recv({});
  MCCL_CHECK(cqe.has_imm);
  const CtrlMsg msg = decode_ctrl(cqe.imm);
  const std::size_t src = comm_.rank_of_host(cqe.src);
  auto it = ctrl_handlers_.find(msg.op);
  MCCL_CHECK_MSG(it != ctrl_handlers_.end(),
                 "control message for unknown collective");
  it->second(msg, src, cqe);
}

void Endpoint::on_data_cqe(const rdma::Cqe& cqe) {
  MCCL_CHECK(cqe.has_imm);
  const CtrlMsg msg = decode_ctrl(cqe.imm);
  const std::size_t src = comm_.rank_of_host(cqe.src);
  auto it = ctrl_handlers_.find(msg.op);
  MCCL_CHECK_MSG(it != ctrl_handlers_.end(),
                 "data message for unknown collective");
  it->second(msg, src, cqe);
}

void Endpoint::on_data_send_cqe(const rdma::Cqe& cqe) {
  const std::uint16_t op = static_cast<std::uint16_t>(cqe.wr_id >> 32);
  auto it = read_handlers_.find(op);
  if (it == read_handlers_.end()) return;  // op does not track completions
  it->second(cqe);
}

void Endpoint::on_chunk_cqe(std::size_t subgroup, const rdma::Cqe& cqe) {
  std::uint32_t imm;
  if (cqe.opcode == rdma::CqeOpcode::kSend) {
    imm = static_cast<std::uint32_t>(cqe.wr_id);
  } else {
    MCCL_CHECK(cqe.has_imm);
    imm = cqe.imm;
    Subgroup& g = subgroups_[subgroup];
    MCCL_CHECK(g.posted > 0);
    --g.posted;
    if (g.uc != nullptr) top_up_uc_recvs(subgroup);
  }
  auto it = mcast_ops_.find(imm_op_tag(imm));
  if (it == mcast_ops_.end()) return;  // late completion of a finished op
  it->second(imm_chunk(imm), subgroup, cqe);
}

// ---------------------------------------------------------------------------
// Communicator wiring for the RC QP meshes
// ---------------------------------------------------------------------------

rdma::RcQp& Communicator::ctrl_qp(std::size_t from, std::size_t to) {
  Endpoint& a = ep(from);
  if (a.ctrl_qps_.empty()) a.ctrl_qps_.assign(eps_.size(), nullptr);
  if (rdma::RcQp* qp = a.ctrl_qps_[to]) return *qp;
  Endpoint& b = ep(to);
  if (b.ctrl_qps_.empty()) b.ctrl_qps_.assign(eps_.size(), nullptr);
  rdma::RcQp& qa = a.nic().create_rc_qp(nullptr, a.ctrl_rcq_);
  rdma::RcQp& qb = b.nic().create_rc_qp(nullptr, b.ctrl_rcq_);
  tag_qp(qa, /*ctrl=*/true);
  tag_qp(qb, /*ctrl=*/true);
  qa.connect(b.host(), qb.qpn());
  qb.connect(a.host(), qa.qpn());
  for (std::size_t i = 0; i < kCtrlRecvCredits; ++i) {
    qa.post_recv({});
    qb.post_recv({});
  }
  a.ctrl_qps_[to] = &qa;
  b.ctrl_qps_[from] = &qb;
  return qa;
}

std::pair<rdma::RcQp*, rdma::RcQp*> Communicator::create_qp_pair(
    std::size_t a_rank, std::size_t b_rank) {
  Endpoint& a = ep(a_rank);
  Endpoint& b = ep(b_rank);
  rdma::RcQp& qa = a.nic().create_rc_qp(a.data_scq_, a.data_rcq_);
  rdma::RcQp& qb = b.nic().create_rc_qp(b.data_scq_, b.data_rcq_);
  tag_qp(qa, /*ctrl=*/false);
  tag_qp(qb, /*ctrl=*/false);
  qa.connect(b.host(), qb.qpn());
  qb.connect(a.host(), qa.qpn());
  return {&qa, &qb};
}

rdma::RcQp& Communicator::data_qp(std::size_t from, std::size_t to) {
  Endpoint& a = ep(from);
  if (a.data_qps_.empty()) a.data_qps_.assign(eps_.size(), nullptr);
  if (rdma::RcQp* qp = a.data_qps_[to]) return *qp;
  Endpoint& b = ep(to);
  if (b.data_qps_.empty()) b.data_qps_.assign(eps_.size(), nullptr);
  rdma::RcQp& qa = a.nic().create_rc_qp(a.data_scq_, a.data_rcq_);
  rdma::RcQp& qb = b.nic().create_rc_qp(b.data_scq_, b.data_rcq_);
  tag_qp(qa, /*ctrl=*/false);
  tag_qp(qb, /*ctrl=*/false);
  qa.connect(b.host(), qb.qpn());
  qb.connect(a.host(), qa.qpn());
  a.data_qps_[to] = &qa;
  b.data_qps_[from] = &qb;
  return qa;
}

}  // namespace mccl::coll
