#include "src/coll/communicator.hpp"

#include <algorithm>

#include "src/coll/mcast_coll.hpp"
#include "src/debug/validate.hpp"
#include "src/coll/p2p_coll.hpp"
#include "src/coll/reduce_scatter.hpp"
#include "src/coll/vandegeijn.hpp"

namespace mccl::coll {

// ---------------------------------------------------------------------------
// OpBase
// ---------------------------------------------------------------------------

OpBase::OpBase(Communicator& comm, std::string name)
    : comm_(comm),
      name_(std::move(name)),
      id_(comm.cluster().next_op_id()),
      finish_(comm.size(), 0),
      phases_(comm.size()),
      crashed_(comm.size(), 0) {}

OpBase::~OpBase() = default;

bool OpBase::done() const { return completed_ == comm_.size(); }

Time OpBase::finish_time() const {
  return *std::max_element(finish_.begin(), finish_.end());
}

Phases OpBase::max_phases() const {
  Phases out;
  for (const Phases& p : phases_) {
    out.barrier = std::max(out.barrier, p.barrier);
    out.transfer = std::max(out.transfer, p.transfer);
    out.reliability = std::max(out.reliability, p.reliability);
    out.handshake = std::max(out.handshake, p.handshake);
  }
  return out;
}

void OpBase::mark_started() {
  start_time_ = comm_.cluster().engine().now();
  comm_.note_op_started();
  // Ranks that crashed before this op started never participate: settle
  // their completion accounting up front so survivors alone gate done().
  for (std::size_t r = 0; r < comm_.size(); ++r)
    if (comm_.rank_host_crashed(r)) note_rank_crashed(r);
}

telemetry::Telemetry& OpBase::telem() { return comm_.cluster().telemetry(); }

void OpBase::rank_done(std::size_t r) {
  MCCL_CHECK(finish_[r] == 0);
  finish_[r] = comm_.cluster().engine().now();
  ++completed_;
  maybe_note_done();
}

void OpBase::note_rank_crashed(std::size_t r) {
  if (crashed_[r]) return;
  crashed_[r] = true;
  if (failed_ || finish_[r] != 0) return;  // already accounted for
  // finish_[r] == 0 is the "unfinished" sentinel; clamp a t=0 crash to 1ps.
  finish_[r] = std::max<Time>(comm_.cluster().engine().now(), 1);
  ++completed_;
  maybe_note_done();
}

std::vector<std::size_t> OpBase::crashed_ranks() const {
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < crashed_.size(); ++r)
    if (crashed_[r]) out.push_back(r);
  return out;
}

void OpBase::fail_op(std::string error) {
  MCCL_CHECK(!failed_);
  failed_ = true;
  error_ = std::move(error);
  const Time now = comm_.cluster().engine().now();
  for (std::size_t r = 0; r < finish_.size(); ++r) {
    if (finish_[r] == 0) {
      finish_[r] = now;
      ++completed_;
    }
  }
  maybe_note_done();
}

void OpBase::maybe_note_done() {
  if (done_noted_ || !done()) return;
  done_noted_ = true;
  comm_.note_op_finished();
  // Fire after the communicator's own bookkeeping so the callback observes
  // a fully settled op (detector deactivated, finish times final).
  if (on_done_) on_done_(*this);
}

// ---------------------------------------------------------------------------
// Communicator
// ---------------------------------------------------------------------------

Communicator::Communicator(Cluster& cluster,
                           std::vector<fabric::NodeId> hosts,
                           CommConfig config)
    : cluster_(cluster), config_(config),
      adaptive_alpha_(config.cutoff_alpha) {
  MCCL_CHECK(hosts.size() >= 2);
  MCCL_CHECK(config_.subgroups >= 1 && config_.chains >= 1);
  MCCL_CHECK(config_.send_workers >= 1 && config_.recv_workers >= 1);
  for (std::size_t r = 0; r < hosts.size(); ++r) {
    rank_of_[hosts[r]] = r;
    eps_.push_back(std::make_unique<Endpoint>(*this, r, hosts[r]));
  }
  // Rail-aware chunk striping: on a multi-rail fabric, pin subgroup s to
  // rail s % rails so each rail carries an even share of the subgroups (and
  // a rail outage degrades only the subgroups striped onto it).
  const int rails = cluster_.fabric().topology().num_rails();
  for (std::size_t s = 0; s < config_.subgroups; ++s)
    groups_.push_back(cluster_.fabric().create_mcast_group(
        rails > 0 ? static_cast<int>(s) % rails : -1));
  for (auto& ep : eps_) {
    ep->setup_workers();
    ep->setup_subgroups();
  }
  host_crashed_.assign(size(), 0);
  for (std::size_t r = 0; r < size(); ++r)
    if (cluster_.host_crashed(static_cast<std::size_t>(hosts[r])))
      host_crashed_[r] = 1;
  crash_listener_id_ = cluster_.add_crash_listener(
      [this](fabric::NodeId host, bool crashed) {
        on_host_crash(host, crashed);
      });
  if (config_.adapt.enabled)
    health_ = std::make_unique<HealthMonitor>(*this, config_.adapt);
  if (config_.detector.enabled) {
    detector_ = std::make_unique<FailureDetector>(*this, config_.detector);
    // Heartbeats travel on the reserved op id 0 (Cluster::next_op_id starts
    // at 1, so no collective ever claims it). The health monitor piggybacks
    // on the same control-plane event: gap samples cost nothing extra.
    for (auto& ep : eps_) {
      const std::size_t r = ep->rank();
      ep->register_ctrl(0, [this, r](const CtrlMsg& m, std::size_t src,
                                     const rdma::Cqe&) {
        if (m.type == CtrlType::kHeartbeat) {
          detector_->on_heartbeat(r, src);
          if (health_) health_->on_heartbeat(r, src);
        }
      });
    }
    detector_->add_listener([this](std::size_t observer, std::size_t peer) {
      for (auto& op : ops_)
        if (!op->done()) op->on_peer_confirmed_dead(observer, peer);
    });
  }
  if (health_) {
    health_->add_listener(
        [this](std::size_t observer, std::size_t peer, bool slow) {
          for (auto& op : ops_)
            if (!op->done()) op->on_peer_slow(observer, peer, slow);
        });
  }
}

Communicator::~Communicator() {
  cluster_.remove_crash_listener(crash_listener_id_);
}

void Communicator::on_host_crash(fabric::NodeId host, bool crashed) {
  auto it = rank_of_.find(host);
  if (it == rank_of_.end()) return;  // not one of ours
  const std::size_t r = it->second;
  host_crashed_[r] = crashed ? 1 : 0;
  if (!crashed) return;
  for (auto& op : ops_)
    if (!op->done()) op->note_rank_crashed(r);
}

std::size_t Communicator::presumed_alive() const {
  std::size_t n = 0;
  for (std::size_t r = 0; r < size(); ++r)
    if (!rank_presumed_dead(r)) ++n;
  return n;
}

void Communicator::note_op_started() {
  if (detector_) detector_->note_op_started();
  if (health_) health_->note_op_started();
}

void Communicator::note_op_finished() {
  if (detector_) detector_->note_op_finished();
  if (health_) health_->note_op_finished();
}

void Communicator::rebalance_subgroups() {
  if (!health_) return;
  const int rails = cluster_.fabric().topology().num_rails();
  if (rails <= 1) return;
  for (const auto& op : ops_)
    if (!op->done()) return;  // trees may carry in-flight multicast
  fabric::Fabric& fab = cluster_.fabric();
  for (std::size_t s = 0; s < groups_.size(); ++s) {
    const int cur = fab.mcast_group_rail(groups_[s]);
    if (cur < 0) continue;  // unpinned group: nothing to re-balance
    const std::size_t cur_bad = health_->unhealthy_dirs_on_rail(cur);
    if (cur_bad == 0) continue;
    // Healthiest rail, lowest id on ties; move only on a strict win so two
    // equally sick rails never trade subgroups back and forth.
    int best = cur;
    std::size_t best_bad = cur_bad;
    for (int rl = 0; rl < rails; ++rl)
      if (health_->unhealthy_dirs_on_rail(rl) < best_bad) {
        best = rl;
        best_bad = health_->unhealthy_dirs_on_rail(rl);
      }
    if (best == cur) continue;
    fab.set_mcast_group_rail(groups_[s], best);
    ++subgroup_repins_;
    MCCL_VALIDATE_THAT(
        subgroup_repins_ <=
            static_cast<std::uint64_t>(config_.adapt.max_transitions) *
                groups_.size(),
        "adapt.oscillation",
        "subgroup re-pins (%llu) exceed %u per subgroup — rail health is "
        "flapping through the re-balancer",
        static_cast<unsigned long long>(subgroup_repins_),
        config_.adapt.max_transitions);
    telemetry::Telemetry& te = cluster_.telemetry();
    te.metrics.counter("coll.adapt.subgroup_repins").add(1);
    te.recorder.record(cluster_.engine().now(), -1,
                       telemetry::EventCat::kAdapt, "subgroup_repin", s,
                       static_cast<std::uint64_t>(best));
  }
}

std::size_t Communicator::rank_of_host(fabric::NodeId host) const {
  auto it = rank_of_.find(host);
  MCCL_CHECK_MSG(it != rank_of_.end(), "host is not part of communicator");
  return it->second;
}

bool Communicator::data_mode() const {
  return cluster_.config().nic.carry_payload;
}

void Communicator::align_symmetric_heap() {
  std::uint64_t watermark = 0;
  for (auto& ep : eps_)
    watermark = std::max(watermark, ep->nic().memory().brk());
  for (auto& ep : eps_) ep->nic().memory().align_brk(watermark);
}

OpBase& Communicator::start_broadcast(std::size_t root, std::uint64_t bytes,
                                      BcastAlgo algo) {
  align_symmetric_heap();
  rebalance_subgroups();
  if (algo == BcastAlgo::kMcast) {
    McastCollective::Params p;
    p.roots = {root};
    p.block_bytes = bytes;
    ops_.push_back(std::make_unique<McastCollective>(*this, "mcast_broadcast",
                                                     std::move(p)));
  } else if (algo == BcastAlgo::kScatterAllgather) {
    ops_.push_back(
        std::make_unique<ScatterAllgatherBcast>(*this, root, bytes));
  } else {
    ops_.push_back(std::make_unique<P2PBroadcast>(*this, root, bytes, algo));
  }
  ops_.back()->start();
  return *ops_.back();
}

OpBase& Communicator::start_allgather(std::uint64_t bytes,
                                      AllgatherAlgo algo) {
  align_symmetric_heap();
  rebalance_subgroups();
  switch (algo) {
    case AllgatherAlgo::kMcast: {
      McastCollective::Params p;
      // Shrunk membership: a rank presumed dead (host crashed, or confirmed
      // by any survivor's detector) no longer sources a block — subsequent
      // ops run clean over the survivors.
      for (std::size_t r = 0; r < size(); ++r)
        if (!rank_presumed_dead(r)) p.roots.push_back(r);
      MCCL_CHECK_MSG(p.roots.size() >= 1, "no surviving ranks to allgather");
      p.block_bytes = bytes;
      ops_.push_back(std::make_unique<McastCollective>(
          *this, "mcast_allgather", std::move(p)));
      break;
    }
    case AllgatherAlgo::kRing:
      ops_.push_back(std::make_unique<RingAllgather>(*this, bytes));
      break;
    case AllgatherAlgo::kLinear:
      ops_.push_back(std::make_unique<LinearAllgather>(*this, bytes));
      break;
    case AllgatherAlgo::kRecDoubling:
      ops_.push_back(std::make_unique<RecDoublingAllgather>(*this, bytes));
      break;
  }
  ops_.back()->start();
  return *ops_.back();
}

OpBase& Communicator::start_reduce_scatter(std::uint64_t block_bytes,
                                           ReduceScatterAlgo algo) {
  align_symmetric_heap();
  if (algo == ReduceScatterAlgo::kRing)
    ops_.push_back(std::make_unique<RingReduceScatter>(*this, block_bytes));
  else
    ops_.push_back(std::make_unique<IncReduceScatter>(*this, block_bytes));
  ops_.back()->start();
  return *ops_.back();
}

OpBase& Communicator::start_barrier() {
  align_symmetric_heap();
  ops_.push_back(std::make_unique<BarrierOp>(*this));
  ops_.back()->start();
  return *ops_.back();
}

OpResult Communicator::finish(OpBase& op) {
  const std::uint64_t rnr_before = [&] {
    std::uint64_t total = 0;
    for (auto& ep : eps_) total += ep->rnr_drops();
    return total;
  }();
  cluster_.run_until_done([&op] { return op.done(); });
  OpResult res;
  res.start = op.start_time();
  res.finish = op.finish_time();
  res.rank_finish = op.rank_finish();
  res.max_phases = op.max_phases();
  res.fetched_chunks = op.fetched_chunks();
  res.fetch_retries = op.fetch_retries();
  res.fetch_failovers = op.fetch_failovers();
  res.watchdog_fired = op.watchdog_fired();
  res.failed = op.failed();
  res.error = op.error();
  res.status = op.status();
  res.missing_blocks = op.missing_blocks();
  std::sort(res.missing_blocks.begin(), res.missing_blocks.end());
  res.crashed_ranks = op.crashed_ranks();
  res.reroots = op.reroots();
  res.adapt_reroots = op.adapt_reroots();
  res.chain_demotions = op.chain_demotions();
  res.fetch_detours = op.fetch_detours();
  // A watchdog-terminated op has incomplete buffers by definition; don't
  // report synthetic-mode success for garbage. Partial completion verifies
  // what survivors do hold (crashed ranks and abandoned blocks exempt).
  res.data_verified = !res.failed && op.verify();
  std::uint64_t rnr_after = 0;
  for (auto& ep : eps_) rnr_after += ep->rnr_drops();
  res.rnr_drops = rnr_after - rnr_before;
  note_op_loss(res.fetched_chunks > 0 || res.rnr_drops > 0 || res.failed);
  // Surface slow-path counters through the metrics registry (incremental:
  // op-scoped deltas accumulate communicator-wide, diffable via snapshots).
  telemetry::MetricsRegistry& reg = cluster_.telemetry().metrics;
  reg.counter("coll.ops", {{"result", to_string(res.status)}}).add(1);
  reg.counter("coll.fetched_chunks").add(res.fetched_chunks);
  reg.counter("coll.fetch_retries").add(res.fetch_retries);
  reg.counter("coll.fetch_failovers").add(res.fetch_failovers);
  reg.counter("coll.rnr_drops").add(res.rnr_drops);
  if (res.watchdog_fired) reg.counter("coll.watchdog_fired").add(1);
  reg.counter("coll.reroots").add(res.reroots);
  reg.counter("coll.missing_blocks").add(res.missing_blocks.size());
  reg.counter("coll.adapt.slow_reroots").add(res.adapt_reroots);
  reg.counter("coll.adapt.chain_demotions").add(res.chain_demotions);
  reg.counter("coll.adapt.fetch_detours").add(res.fetch_detours);
  reg.histogram("coll.op_duration_us", {{"op", op.name()}})
      .observe(to_microseconds(res.duration()));
  return res;
}

void Communicator::note_op_loss(bool lossy) {
  if (!config_.adaptive_cutoff) return;
  if (lossy) {
    adaptive_alpha_ = std::max(config_.cutoff_alpha_min, adaptive_alpha_ / 2);
  } else if (adaptive_alpha_ < config_.cutoff_alpha) {
    adaptive_alpha_ = std::min(config_.cutoff_alpha, adaptive_alpha_ * 2);
  }
}

OpResult Communicator::broadcast(std::size_t root, std::uint64_t bytes,
                                 BcastAlgo algo) {
  return finish(start_broadcast(root, bytes, algo));
}

OpResult Communicator::allgather(std::uint64_t bytes, AllgatherAlgo algo) {
  return finish(start_allgather(bytes, algo));
}

OpResult Communicator::reduce_scatter(std::uint64_t block_bytes,
                                      ReduceScatterAlgo algo) {
  return finish(start_reduce_scatter(block_bytes, algo));
}

OpResult Communicator::barrier() { return finish(start_barrier()); }

}  // namespace mccl::coll
