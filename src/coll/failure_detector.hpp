// Lease-based failure detection for crash-tolerant collectives.
//
// Liveness is tracked per observer rank: every rank grants each peer a
// lease and renews it when a heartbeat from that peer arrives over the RC
// control mesh (CtrlType::kHeartbeat on the reserved op id 0 — the same
// connections that carry barrier tokens and fetch coordination, so a
// heartbeat that gets through also proves the control plane usable).
// Heartbeats are emitted only while at least one collective is in flight;
// an idle communicator schedules nothing and the event queue drains.
//
// An expired lease raises a suspicion; `suspect_threshold` consecutive
// expiries with no intervening heartbeat confirm the peer dead. The model
// is crash-stop: confirmation latches permanently and posthumous
// heartbeats are counted but ignored. Confirmed deaths are delivered to
// listeners (the communicator fans them out to in-flight ops, which repair
// their rings around the dead rank).
//
// Determinism: per-rank tick phases come from Rng(seed ^ rank) and all
// timers from the simulation clock, so identical seeds and fault timelines
// replay bit-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/units.hpp"

namespace mccl::telemetry {
class Counter;
}  // namespace mccl::telemetry

namespace mccl::coll {

class Communicator;

struct DetectorConfig {
  bool enabled = true;
  /// Heartbeat emission and lease-sweep period per rank.
  Time heartbeat_interval = 100 * kMicrosecond;
  /// Lease granted on every received heartbeat (and at activation).
  Time lease_timeout = 400 * kMicrosecond;
  /// Consecutive lease expiries before a peer is confirmed dead. With the
  /// defaults a silent peer is confirmed after ~lease_timeout plus
  /// (threshold - 1) sweep periods — well before the op watchdog.
  std::uint32_t suspect_threshold = 3;
  /// Seeds the per-rank tick phase jitter (decorrelates rank timers).
  std::uint64_t seed = 1;
  /// Hard bound on one activation window: if an op keeps the detector
  /// alive longer than this, ticking stops so a wedged simulation drains
  /// (and trips the usual incomplete-run check) instead of spinning
  /// forever. The collective watchdog fires far earlier.
  Time max_active = 500000 * kMicrosecond;
};

class FailureDetector {
 public:
  /// Called once per (observer, peer) confirmation, in confirmation order.
  using DeathListener =
      std::function<void(std::size_t observer, std::size_t peer)>;

  FailureDetector(Communicator& comm, DetectorConfig cfg);

  const DetectorConfig& config() const { return cfg_; }
  void add_listener(DeathListener fn) { listeners_.push_back(std::move(fn)); }

  /// Op lifecycle: the detector ticks only while ops are in flight.
  void note_op_started();
  void note_op_finished();
  bool active() const { return active_ops_ > 0; }

  /// Heartbeat receipt at `observer` from `src` (wired by the communicator
  /// into the op-0 control handler).
  void on_heartbeat(std::size_t observer, std::size_t src);

  /// True once `observer` has confirmed `peer` dead (latched).
  bool dead(std::size_t observer, std::size_t peer) const {
    return views_[observer].dead[peer] != 0;
  }
  /// True once any observer has confirmed `peer` dead — the communicator's
  /// membership view for ops started later.
  bool confirmed_by_any(std::size_t peer) const {
    return any_dead_[peer] != 0;
  }
  /// Peers (including self) `observer` still considers alive.
  std::size_t alive_count(std::size_t observer) const;

  std::uint64_t heartbeats_sent() const { return heartbeats_sent_; }
  std::uint64_t suspicions() const { return suspicions_total_; }
  std::uint64_t confirmed_dead() const { return confirmed_total_; }
  std::uint64_t posthumous_heartbeats() const { return posthumous_; }

  /// Validate-build audit of one observer's lease state machine: every
  /// latched confirmation must be backed by a suspicion count at or above
  /// the threshold (suspicion is never reset by confirm, only by a
  /// heartbeat — which dead peers no longer get credited for). Reports
  /// "detector.lease_state"; returns false if anything was reported.
  /// Always true in regular builds.
  bool validate_view(std::size_t observer) const;

  /// Validate-build fault-injection hook: confirms a peer dead without the
  /// suspicion protocol, tripping "detector.premature_confirm" immediately
  /// and leaving state that validate_view flags as "detector.lease_state".
  void test_confirm(std::size_t observer, std::size_t peer) {
    confirm(observer, peer);
  }

 private:
  struct View {
    std::vector<Time> lease;              // per peer, absolute expiry
    std::vector<std::uint32_t> suspect;   // consecutive expiries
    std::vector<char> dead;               // latched confirmations
  };

  void activate();
  void deactivate();
  void tick(std::size_t rank, std::uint64_t gen);
  void confirm(std::size_t observer, std::size_t peer);

  Communicator& comm_;
  DetectorConfig cfg_;
  std::vector<View> views_;
  std::vector<Time> phase_;      // deterministic per-rank first-tick offset
  std::vector<char> any_dead_;
  std::vector<DeathListener> listeners_;
  std::size_t active_ops_ = 0;
  std::uint64_t generation_ = 0;  // invalidates ticks across idle windows
  Time activated_at_ = 0;

  std::uint64_t heartbeats_sent_ = 0;
  std::uint64_t suspicions_total_ = 0;
  std::uint64_t confirmed_total_ = 0;
  std::uint64_t posthumous_ = 0;
  // Registry references resolved once at wiring time (hot-path friendly).
  telemetry::Counter* ctr_heartbeats_ = nullptr;
  telemetry::Counter* ctr_suspicions_ = nullptr;
  telemetry::Counter* ctr_confirmed_ = nullptr;
  telemetry::Counter* ctr_posthumous_ = nullptr;
};

}  // namespace mccl::coll
