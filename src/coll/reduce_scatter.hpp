// Reduce-Scatter: the collective the multicast Allgather shares the NIC
// with in FSDP (paper Section II-A, Fig 3, Appendix B).
//
// Semantics: every rank contributes P blocks of `block_bytes` float32 data;
// rank r ends with the element-wise sum of everyone's block r.
//
//  - RingReduceScatter: the classic P-1-step ring — N*(P-1) bytes on *both*
//    NIC directions (Fig 3's Ring column); reduction on the host.
//  - IncReduceScatter: SHARP-like in-network reduction over src/inc —
//    N*(P-1) on the send path, only N on the receive path (Fig 3's INC
//    column), which is what makes it complementary to the multicast
//    Allgather under concurrent execution.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/coll/communicator.hpp"

namespace mccl::coll {

/// Element value helpers: small integers so float accumulation is exact.
inline float rs_value(std::size_t origin, std::size_t block,
                      std::uint64_t elem) {
  return static_cast<float>((origin * 7 + block * 3 + elem) % 32);
}

class RingReduceScatter : public OpBase {
 public:
  RingReduceScatter(Communicator& comm, std::uint64_t block_bytes);
  ~RingReduceScatter() override;

  void start() override;
  bool verify() const override;

 private:
  struct RankState {
    std::uint64_t sendbuf = 0;   // P blocks
    std::uint64_t recvbuf = 0;   // 1 block (the result)
    std::uint64_t scratch = 0;   // P-1 landing slots
    std::size_t segs_done = 0;   // pipelined segments processed
    std::size_t finals_done = 0;
    bool op_done = false;
    rdma::RcQp* qp_left = nullptr;   // op-owned: receives from the left
    rdma::RcQp* qp_right = nullptr;  // op-owned: sends to the right
  };

  std::size_t num_segments() const;
  std::uint64_t seg_off(std::size_t g) const;
  std::uint64_t seg_len(std::size_t g) const;
  void on_ctrl(std::size_t r, const CtrlMsg& msg, std::size_t src,
               const rdma::Cqe& cqe);
  void send_from(std::size_t r, std::uint64_t addr, std::uint64_t len);
  void accumulate(std::size_t r, std::uint64_t acc_addr,
                  std::uint64_t own_addr, std::uint64_t len);

  std::uint64_t bytes_;
  std::vector<RankState> st_;
};

class IncReduceScatter : public OpBase {
 public:
  IncReduceScatter(Communicator& comm, std::uint64_t block_bytes);
  ~IncReduceScatter() override;

  void start() override;
  bool verify() const override;

 private:
  struct RankState {
    std::uint64_t sendbuf = 0;
    std::uint64_t recvbuf = 0;
    std::size_t chunks_done = 0;
    rdma::Cq* result_cq = nullptr;  // INC results, charged on a recv worker
    std::unordered_map<std::uint32_t, fabric::Payload> payloads;
    bool op_done = false;
  };

  void contribute_batch(std::size_t r, std::size_t peer_off,
                        std::size_t chunk);
  void on_result(std::size_t r, const rdma::Cqe& cqe);

  std::uint64_t bytes_;
  std::uint32_t chunk_bytes_;
  std::size_t chunks_per_block_;
  inc::SessionId session_;
  std::vector<RankState> st_;
};

/// Standalone dissemination barrier (also usable as a latency probe).
class BarrierOp : public OpBase {
 public:
  explicit BarrierOp(Communicator& comm);
  ~BarrierOp() override;

  void start() override;
  bool verify() const override { return true; }

 private:
  struct RankState {
    std::size_t round = 0;
    std::vector<std::size_t> seen;
    bool done = false;
  };
  void send_round(std::size_t r);
  void advance(std::size_t r);

  std::size_t rounds_;
  std::vector<RankState> st_;
};

}  // namespace mccl::coll
