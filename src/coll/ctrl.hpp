// Control-plane message encoding.
//
// All slow-path coordination (RNR barrier, broadcast-chain activation
// tokens, final handshake, fetch requests/acks) travels as zero-length RC
// sends whose 32-bit immediate encodes | type:4 | op:12 | arg:16 |.
//
// The fast path uses a different immediate layout (see mcast_coll.hpp):
// | op_tag:8 | chunk:24 | — Fig 7's split of the CQE immediate between PSN
// bits and collective-ID bits.
#pragma once

#include <cstdint>

#include "src/common/check.hpp"

namespace mccl::coll {

enum class CtrlType : std::uint8_t {
  kBarrier = 1,     // dissemination-barrier round token (arg = round)
  kChainToken = 2,  // multicast sequencer activation (arg unused)
  kFinal = 3,       // final-handshake packet (arg unused)
  // Reliability slow path (arg = block index). A request may arrive from
  // ANY rank, not just the right neighbor: requesters retry with backoff
  // and, after `fetch_retry_cap` unanswered attempts, fail over to the
  // target's own left neighbor. Duplicate requests (retries) are normal;
  // the target acks at most once per (requester, block) transition to
  // complete, and the requester latches the first ack per block.
  kFetchReq = 4,    // request permission to fetch a block's chunks
  kFetchAck = 5,    // sender holds the whole block; fetch via RDMA Read

  kStep = 6,        // generic step token for P2P baselines (arg = step)

  // Crash tolerance. Heartbeats ride the same RC control mesh as everything
  // else (piggybacked liveness: progress on the connection renews leases).
  // They are addressed to the reserved op id 0, which no collective ever
  // uses — the communicator's failure detector registers that handler.
  kHeartbeat = 7,    // lease renewal (arg unused)
  // Root-repair protocol, run when a block's root is confirmed dead. Every
  // survivor reports to the block's coordinator (first alive rank right of
  // the dead root) whether it holds the full block; the coordinator either
  // re-roots fetches at a surviving full holder or declares the block dead.
  kBlockReport = 8,  // arg = | block:15 | holds_full:1 |
  kReRoot = 9,       // arg = | block:8 | new_root:8 |
  kBlockDead = 10,   // no survivor holds the block (arg = block)
  // Performance-fault adaptation (health plane). A rank whose health view
  // marks a block's root as slow reports to the block's coordinator whether
  // it holds the full block; the coordinator re-roots fetch responsibility
  // at the first full holder via the ordinary kReRoot broadcast (the root
  // stays alive — no census quorum and never a kBlockDead verdict).
  kSlowRoot = 11,    // arg = | block:15 | holds_full:1 |
};

struct CtrlMsg {
  CtrlType type = CtrlType::kBarrier;
  std::uint16_t op = 0;   // collective instance id (12 bits used)
  std::uint16_t arg = 0;
};

inline std::uint32_t encode_ctrl(const CtrlMsg& m) {
  MCCL_CHECK(m.op < (1u << 12));
  return (static_cast<std::uint32_t>(m.type) << 28) |
         (static_cast<std::uint32_t>(m.op) << 16) | m.arg;
}

inline CtrlMsg decode_ctrl(std::uint32_t imm) {
  CtrlMsg m;
  m.type = static_cast<CtrlType>(imm >> 28);
  m.op = static_cast<std::uint16_t>((imm >> 16) & 0xfff);
  m.arg = static_cast<std::uint16_t>(imm & 0xffff);
  return m;
}

/// Fast-path immediate: | op_tag:8 | chunk:24 |.
inline constexpr std::uint32_t kChunkBits = 24;

inline std::uint32_t encode_chunk_imm(std::uint8_t op_tag,
                                      std::uint32_t chunk) {
  MCCL_CHECK(chunk < (1u << kChunkBits));
  return (static_cast<std::uint32_t>(op_tag) << kChunkBits) | chunk;
}

inline std::uint8_t imm_op_tag(std::uint32_t imm) {
  return static_cast<std::uint8_t>(imm >> kChunkBits);
}

inline std::uint32_t imm_chunk(std::uint32_t imm) {
  return imm & ((1u << kChunkBits) - 1);
}

}  // namespace mccl::coll
