// Distributed broadcast sequencer (paper Appendix A).
//
// The P Allgather participants are split into M parallel broadcast chains;
// within a chain, ranks multicast one by one, activated by a token from
// their predecessor. At schedule step i, the active group is
//   G^i = { P_i, P_{R+i}, ..., P_{(M-1)R+i} },  R = P / M,
// i.e. the i-th member of every chain. Chains can be mapped onto racks to
// bound per-rack outbound multicast traffic.
//
// Pure functions, unit-testable in isolation.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/check.hpp"

namespace mccl::coll {

struct ChainSchedule {
  std::size_t ranks = 0;
  std::size_t chains = 0;
  std::size_t chain_len = 0;  // R = ceil(P / M) = number of steps

  ChainSchedule(std::size_t p, std::size_t m) : ranks(p), chains(m) {
    MCCL_CHECK(p >= 1 && m >= 1 && m <= p);
    chain_len = (p + m - 1) / m;
  }

  /// Chain that rank `r` belongs to.
  std::size_t chain_of(std::size_t r) const {
    MCCL_CHECK(r < ranks);
    return r / chain_len;
  }

  /// Position of rank `r` within its chain == the schedule step at which it
  /// multicasts.
  std::size_t step_of(std::size_t r) const {
    MCCL_CHECK(r < ranks);
    return r % chain_len;
  }

  /// True if rank `r` starts multicasting right after the RNR barrier.
  bool is_chain_head(std::size_t r) const { return step_of(r) == 0; }

  /// Rank to which `r` passes the activation token, or -1 at chain end.
  int successor(std::size_t r) const {
    MCCL_CHECK(r < ranks);
    const std::size_t next = r + 1;
    if (next >= ranks) return -1;
    if (chain_of(next) != chain_of(r)) return -1;
    return static_cast<int>(next);
  }

  /// Active group at step i (Appendix A's G^i), for analysis and tests.
  std::vector<std::size_t> active_group(std::size_t step) const {
    MCCL_CHECK(step < chain_len);
    std::vector<std::size_t> g;
    for (std::size_t c = 0; c < chains; ++c) {
      const std::size_t r = c * chain_len + step;
      if (r < ranks) g.push_back(r);
    }
    return g;
  }
};

}  // namespace mccl::coll
