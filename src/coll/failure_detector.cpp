#include "src/coll/failure_detector.hpp"

#include "src/coll/communicator.hpp"
#include "src/common/rng.hpp"
#include "src/debug/validate.hpp"

namespace mccl::coll {

FailureDetector::FailureDetector(Communicator& comm, DetectorConfig cfg)
    : comm_(comm), cfg_(cfg) {
  const std::size_t P = comm_.size();
  views_.resize(P);
  for (View& v : views_) {
    v.lease.assign(P, 0);
    v.suspect.assign(P, 0);
    v.dead.assign(P, 0);
  }
  any_dead_.assign(P, 0);
  // Per-rank tick phase: decorrelates the sweep timers so P ranks do not
  // all fire on the same picosecond. Drawn once, from a seed independent
  // of the fabric's fault RNG.
  phase_.resize(P);
  for (std::size_t r = 0; r < P; ++r) {
    Rng rng(cfg_.seed ^ (0x5dee7ec7ull + r));
    phase_[r] = static_cast<Time>(
        rng.below(static_cast<std::uint64_t>(cfg_.heartbeat_interval)));
  }
  telemetry::MetricsRegistry& reg = comm_.cluster().telemetry().metrics;
  ctr_heartbeats_ = &reg.counter("detector.heartbeats_sent");
  ctr_suspicions_ = &reg.counter("detector.suspicions");
  ctr_confirmed_ = &reg.counter("detector.confirmed_dead");
  ctr_posthumous_ = &reg.counter("detector.posthumous_heartbeats");
}

void FailureDetector::note_op_started() {
  if (++active_ops_ == 1) activate();
}

void FailureDetector::note_op_finished() {
  MCCL_CHECK(active_ops_ > 0);
  if (--active_ops_ == 0) deactivate();
}

void FailureDetector::activate() {
  sim::Engine& eng = comm_.cluster().engine();
  activated_at_ = eng.now();
  ++generation_;
  const std::uint64_t gen = generation_;
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    View& v = views_[r];
    // Fresh leases for everyone not already confirmed dead; stale suspicion
    // from a previous activation window must not carry over.
    for (std::size_t p = 0; p < comm_.size(); ++p) {
      if (v.dead[p]) continue;
      v.lease[p] = eng.now() + cfg_.lease_timeout;
      v.suspect[p] = 0;
    }
    eng.schedule(cfg_.heartbeat_interval + phase_[r],
                 [this, r, gen] { tick(r, gen); });
  }
}

void FailureDetector::deactivate() {
  // Pending ticks see a stale generation and fall through without
  // rescheduling, so the event queue drains between ops.
  ++generation_;
}

void FailureDetector::tick(std::size_t rank, std::uint64_t gen) {
  if (gen != generation_ || active_ops_ == 0) return;
  sim::Engine& eng = comm_.cluster().engine();
  const Time now = eng.now();
  if (now - activated_at_ > cfg_.max_active) return;  // wedged-run bound
  Endpoint& ep = comm_.ep(rank);
  // A crashed host's software is gone: it neither emits heartbeats nor
  // sweeps leases. (Its NIC would drop the sends anyway; stopping the tick
  // also stops the event churn.)
  if (ep.nic().crashed()) return;

  View& v = views_[rank];
  telemetry::Telemetry& te = comm_.cluster().telemetry();
  for (std::size_t p = 0; p < comm_.size(); ++p) {
    if (p == rank || v.dead[p]) continue;
    ep.ctrl_send(p, {CtrlType::kHeartbeat, 0, 0});
    ++heartbeats_sent_;
    ctr_heartbeats_->add(1);
    if (now < v.lease[p]) continue;
    // Lease expired with no heartbeat from p since the last sweep.
    ++v.suspect[p];
    ++suspicions_total_;
    ctr_suspicions_->add(1);
    v.lease[p] = now + cfg_.heartbeat_interval;  // re-check next sweep
    te.recorder.record(now, static_cast<std::int32_t>(ep.host()),
                       telemetry::EventCat::kDetector, "peer_suspected", p,
                       v.suspect[p]);
    if (v.suspect[p] >= cfg_.suspect_threshold) confirm(rank, p);
  }
  eng.schedule(cfg_.heartbeat_interval, [this, rank, gen] { tick(rank, gen); });
}

void FailureDetector::confirm(std::size_t observer, std::size_t peer) {
  View& v = views_[observer];
  if (v.dead[peer]) return;
  // A confirmation is only legal after `suspect_threshold` consecutive
  // lease expiries — anything earlier is a detector protocol bug.
  MCCL_VALIDATE_THAT(v.suspect[peer] >= cfg_.suspect_threshold,
                     "detector.premature_confirm",
                     "observer %zu confirmed peer %zu dead at suspicion "
                     "%u (threshold %u)",
                     observer, peer, v.suspect[peer], cfg_.suspect_threshold);
  v.dead[peer] = 1;
  any_dead_[peer] = 1;
  ++confirmed_total_;
  ctr_confirmed_->add(1);
  telemetry::Telemetry& te = comm_.cluster().telemetry();
  const Time now = comm_.cluster().engine().now();
  Endpoint& ep = comm_.ep(observer);
  te.recorder.record(now, static_cast<std::int32_t>(ep.host()),
                     telemetry::EventCat::kDetector, "peer_dead", peer, 0);
  if (te.tracer.enabled())
    te.tracer.instant(ep.trace_track(), "peer_dead", now, "detector");
  for (const DeathListener& fn : listeners_) fn(observer, peer);
}

void FailureDetector::on_heartbeat(std::size_t observer, std::size_t src) {
  View& v = views_[observer];
  if (v.dead[src]) {
    // Crash-stop: confirmations are final. A heartbeat that raced the
    // confirmation through the fabric is counted and dropped.
    ++posthumous_;
    ctr_posthumous_->add(1);
    return;
  }
  v.lease[src] = comm_.cluster().engine().now() + cfg_.lease_timeout;
  v.suspect[src] = 0;
}

bool FailureDetector::validate_view(std::size_t observer) const {
  if (!debug::kValidate) return true;
  const View& v = views_[observer];
  bool ok = true;
  for (std::size_t p = 0; p < comm_.size(); ++p) {
    if (v.dead[p] && v.suspect[p] < cfg_.suspect_threshold) {
      debug::report("detector.lease_state",
                    "observer %zu holds peer %zu dead with suspicion %u "
                    "below threshold %u",
                    observer, p, v.suspect[p], cfg_.suspect_threshold);
      ok = false;
    }
  }
  return ok;
}

std::size_t FailureDetector::alive_count(std::size_t observer) const {
  const View& v = views_[observer];
  std::size_t n = 0;
  for (std::size_t p = 0; p < comm_.size(); ++p)
    if (!v.dead[p]) ++n;
  return n;
}

}  // namespace mccl::coll
