// Point-to-point baseline collectives over the RC transport — the
// algorithms the paper compares against (Section VI-B): k-nomial (binomial)
// and balanced-binary-tree and linear Broadcast, ring and linear Allgather.
//
// RC moves arbitrary-length messages with hardware segmentation and
// reliability, so the host-side cost is per *message*, not per chunk — the
// reason P2P stacks are cheap on CPU but not bandwidth-optimal on the wire.
#pragma once

#include <vector>

#include "src/coll/communicator.hpp"

namespace mccl::coll {

/// Tree/linear Broadcast. The tree shape is fixed at construction:
///  - kBinomial:  children of v are v + 2^i (k-nomial with radix 2),
///  - kBinaryTree: children of v are 2v+1, 2v+2,
///  - kLinear:    the root sends to everyone directly.
/// All in root-shifted rank space.
class P2PBroadcast : public OpBase {
 public:
  P2PBroadcast(Communicator& comm, std::size_t root, std::uint64_t bytes,
               BcastAlgo algo);
  ~P2PBroadcast() override;

  void start() override;
  bool verify() const override;

 private:
  struct RankState {
    std::uint64_t sendbuf = 0;
    std::uint64_t recvbuf = 0;
    int parent = -1;
    std::vector<std::size_t> children;
    rdma::RcQp* parent_qp = nullptr;           // op-owned stream from parent
    std::vector<rdma::RcQp*> child_qps;        // op-owned streams to children
    bool received = false;
    bool local_copy_done = false;
    bool op_done = false;
  };

  void forward(std::size_t r, std::uint64_t src_addr);
  void send_to_child(std::size_t r, std::size_t child_idx,
                     std::uint64_t src_addr);
  void on_ctrl(std::size_t r, const CtrlMsg& msg, std::size_t src,
               const rdma::Cqe& cqe);
  void maybe_done(std::size_t r);

  std::size_t root_;
  std::uint64_t bytes_;
  BcastAlgo algo_;
  std::vector<RankState> st_;
};

/// Ring Allgather: P-1 steps; each step every rank forwards the newest
/// block to its right neighbor while receiving one from the left.
class RingAllgather : public OpBase {
 public:
  RingAllgather(Communicator& comm, std::uint64_t bytes);
  ~RingAllgather() override;

  void start() override;
  bool verify() const override;

 private:
  struct RankState {
    std::uint64_t sendbuf = 0;
    std::uint64_t recvbuf = 0;
    std::size_t steps_done = 0;
    bool local_copy_done = false;
    bool op_done = false;
    rdma::RcQp* qp_left = nullptr;   // op-owned: receives from the left
    rdma::RcQp* qp_right = nullptr;  // op-owned: sends to the right
  };

  void on_ctrl(std::size_t r, const CtrlMsg& msg, std::size_t src,
               const rdma::Cqe& cqe);
  void send_block(std::size_t r, std::size_t block);
  void maybe_done(std::size_t r);

  std::uint64_t bytes_;
  std::vector<RankState> st_;
};

/// Linear Allgather: every rank RDMA-Writes its block into every peer's
/// receive buffer — the Omega(N*(P-1)) send-path data movement of Insight 1.
class LinearAllgather : public OpBase {
 public:
  LinearAllgather(Communicator& comm, std::uint64_t bytes);
  ~LinearAllgather() override;

  void start() override;
  bool verify() const override;

 private:
  struct RankState {
    std::uint64_t sendbuf = 0;
    std::uint64_t recvbuf = 0;
    std::size_t blocks_received = 0;
    bool local_copy_done = false;
    bool op_done = false;
    std::vector<rdma::RcQp*> peer_qps;  // op-owned, indexed by peer rank
  };

  void on_ctrl(std::size_t r, const CtrlMsg& msg, std::size_t src,
               const rdma::Cqe& cqe);
  void maybe_done(std::size_t r);

  std::uint64_t bytes_;
  std::uint32_t rkey_;
  std::vector<RankState> st_;
};

}  // namespace mccl::coll
