// Communicator: ranks, progress-engine workers, control plane, multicast
// subgroups — and the collective-operation API.
//
// One Communicator spans a set of hosts (one rank per host, as in the
// paper's 1-PPN evaluation). Construction wires, per rank:
//  - an application thread (host CPU worker) running the control plane:
//    RNR barrier, chain tokens, final handshake, fetch coordination;
//  - `send_workers` + `recv_workers` progress workers on the configured
//    engine (host CPU or DPA) — flow-direction parallelism;
//  - `subgroups` multicast groups, each with its own UD/UC QP, CQs and
//    staging ring — packet parallelism; subgroup CQs are distributed over
//    the receive workers;
//  - lazily, pairwise RC QPs for the control plane and for the data plane
//    of the P2P baselines and the reliability fetch layer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/coll/cluster.hpp"
#include "src/coll/ctrl.hpp"
#include "src/coll/failure_detector.hpp"
#include "src/coll/health_monitor.hpp"
#include "src/exec/cost_model.hpp"

namespace mccl::coll {

class Communicator;
class OpBase;

enum class Transport : std::uint8_t {
  kUd,       // UD multicast datagrams + receive-side staging (Section III)
  kUcMcast,  // proposed UC multicast RDMA Writes, no staging (Section V-B)
};

enum class EngineKind : std::uint8_t {
  kCpu,  // progress workers on host CPU cores
  kDpa,  // progress workers on DPA hardware threads (SmartNIC offload)
};

struct CommConfig {
  Transport transport = Transport::kUd;
  EngineKind progress_engine = EngineKind::kCpu;
  /// Where the *send* workers run; defaults to progress_engine. The paper's
  /// DPA experiments drive the receiver from an x86 client, i.e. send
  /// workers on the CPU while receive workers are offloaded.
  std::optional<EngineKind> send_engine;
  std::size_t subgroups = 1;      // multicast subgroups (packet parallelism)
  std::size_t chains = 1;         // broadcast chains (multicast parallelism)
  std::size_t send_workers = 1;   // flow-direction parallelism
  std::size_t recv_workers = 1;
  std::uint32_t chunk_bytes = 4096;  // fast-path fragmentation granularity
  std::size_t send_batch = 16;       // doorbell batching factor
  std::size_t staging_slots = 2048;  // staging ring slots per subgroup (UD)
  Time cutoff_alpha = 500 * kMicrosecond;  // cutoff-timer slack
  bool reliability = true;                 // enable the slow-path fetch ring

  // --- slow-path hardening (fault tolerance beyond the paper) --------------
  /// A fetch request that is not ACKed within this window is retried with
  /// exponential backoff (x2 per attempt).
  Time fetch_retry_timeout = 150 * kMicrosecond;
  /// Requests sent to one target before failing over to its left neighbor
  /// (skipping the unresponsive rank; the chain still ends at the block
  /// root, which always holds its own block).
  std::size_t fetch_retry_cap = 3;
  /// Tighten the effective cutoff alpha after an op that observed loss
  /// (halved per lossy op down to `cutoff_alpha_min`, relaxed back toward
  /// `cutoff_alpha` after clean ops) — recovery starts sooner on a fabric
  /// known to be misbehaving.
  bool adaptive_cutoff = true;
  Time cutoff_alpha_min = 25 * kMicrosecond;
  /// Hard per-op deadline: `watchdog_multiplier` times the cutoff deadline
  /// (or `watchdog_timeout` if nonzero). On expiry the op dumps per-rank
  /// protocol state and fails with a structured error instead of hanging
  /// the simulation (e.g. a partitioned fabric with no surviving path).
  double watchdog_multiplier = 50.0;
  Time watchdog_timeout = 0;  // explicit override; 0 = multiplier-based

  // --- crash tolerance -------------------------------------------------------
  /// Lease-based failure detector (heartbeats on the RC control mesh while
  /// ops are in flight). Confirmed-dead peers are spliced out of the
  /// multicast collective's rings: barrier rounds are credited, fetch
  /// chains walk around them, the final handshake re-closes over survivors,
  /// and a dead block root is replaced by a surviving full holder or the
  /// block is abandoned (OpResult::kPartial). Disable to get the PR-1
  /// behavior: a crash mid-op ends in a watchdog failure.
  DetectorConfig detector;

  // --- performance-fault adaptation ------------------------------------------
  /// Online health plane (health_monitor.hpp): per-peer slowness scores and
  /// per-link health drive slow-root re-ownership, fetch detours, chain
  /// demotion and weighted-ECMP steering. Off by default (static baseline).
  HealthConfig adapt;

  std::optional<exec::DatapathCosts> costs_override;  // else by engine kind

  // --- multi-tenant QoS (cluster scheduler plane) ----------------------------
  /// Tenant id every QP of this communicator charges its packets to (pool
  /// sub-pool accounting + per-tenant fabric metrics). 0 = untenanted.
  std::uint16_t tenant = 0;
  /// Tenant QoS class, 0 = highest priority: selects the data virtual lane
  /// at switch egress and the priority band at NIC injection. Only matters
  /// once a NIC QoS policy (Nic::set_qos_policy) and/or virtual lanes are
  /// active; with the defaults everything rides kBulkLane as before.
  std::uint8_t qos_class = 0;
  /// Weighted-fair share at NIC injection (QosPolicy::kWfq).
  std::uint16_t qos_weight = 1;
};

/// Per-rank protocol phase timestamps (durations), the Fig 10 breakdown.
struct Phases {
  Time barrier = 0;      // RNR synchronization
  Time transfer = 0;     // multicast / data movement
  Time reliability = 0;  // slow-path recovery (0 if no drops)
  Time handshake = 0;    // final ring handshake
  Time total() const { return barrier + transfer + reliability + handshake; }
};

/// Completion verdict of a collective on a faulty cluster.
enum class OpStatus : std::uint8_t {
  kOk,       // every surviving rank holds every block
  kPartial,  // survivors completed, but some blocks are unrecoverable
             // (their root crashed before any survivor held them in full)
  kFailed,   // watchdog-terminated; buffers are garbage
};

inline const char* to_string(OpStatus s) {
  switch (s) {
    case OpStatus::kOk: return "ok";
    case OpStatus::kPartial: return "partial";
    case OpStatus::kFailed: return "failed";
  }
  return "?";
}

/// Result of a completed (blocking) collective.
struct OpResult {
  Time start = 0;
  Time finish = 0;  // max completion over ranks
  Time duration() const { return finish - start; }
  std::vector<Time> rank_finish;
  Phases max_phases;  // per-phase max over ranks
  bool data_verified = false;
  std::uint64_t fetched_chunks = 0;  // chunks recovered via the slow path
  std::uint64_t rnr_drops = 0;
  // Slow-path hardening counters (all zero on a clean fast-path run).
  std::uint64_t fetch_retries = 0;    // re-sent fetch requests (same target)
  std::uint64_t fetch_failovers = 0;  // targets skipped as unresponsive
  bool watchdog_fired = false;
  /// Set when the op was terminated by the watchdog instead of completing;
  /// `error` carries the structured reason and `data_verified` is false.
  bool failed = false;
  std::string error;
  // --- crash tolerance -------------------------------------------------------
  OpStatus status = OpStatus::kOk;
  /// kPartial: exactly the blocks no survivor could recover (sorted).
  std::vector<std::size_t> missing_blocks;
  /// Ranks that physically crashed before or during the op (sorted). Their
  /// buffers are exempt from verification; survivors still complete.
  std::vector<std::size_t> crashed_ranks;
  /// Dead block roots successfully replaced by a surviving full holder.
  std::uint64_t reroots = 0;
  // --- performance-fault adaptation ------------------------------------------
  /// Alive-but-slow block roots replaced by a full holder (kSlowRoot).
  std::uint64_t adapt_reroots = 0;
  /// Chain-token passes that overlapped a lagging root instead of waiting.
  std::uint64_t chain_demotions = 0;
  /// Fetch requests steered away from a lagging target.
  std::uint64_t fetch_detours = 0;
};

enum class BcastAlgo : std::uint8_t {
  kMcast,       // the paper's multicast Broadcast
  kBinomial,    // k-nomial tree (radix 2), whole-message forwarding
  kBinaryTree,  // balanced binary tree
  kLinear,      // root unicasts to every peer
  kScatterAllgather,  // van de Geijn: binomial scatter + ring allgather —
                      // the production large-message algorithm
};
enum class AllgatherAlgo : std::uint8_t {
  kMcast,        // the paper's bandwidth-optimal composition of Broadcasts
  kRing,         // NCCL-style ring
  kLinear,       // all-to-all writes
  kRecDoubling,  // recursive doubling (power-of-two rank counts)
};
enum class ReduceScatterAlgo : std::uint8_t { kRing, kInc };

// ---------------------------------------------------------------------------
// Endpoint: per-rank resources
// ---------------------------------------------------------------------------

class Endpoint {
 public:
  /// Handler for control-plane messages addressed to one collective op.
  using CtrlHandler =
      std::function<void(const CtrlMsg&, std::size_t src_rank,
                         const rdma::Cqe&)>;
  /// Handler for fast-path chunk arrivals (runs on a receive worker, after
  /// the per-CQE datapath cost has been charged).
  using ChunkHandler =
      std::function<void(std::uint32_t chunk, std::size_t subgroup,
                         const rdma::Cqe&)>;

  Endpoint(Communicator& comm, std::size_t rank, fabric::NodeId host);

  std::size_t rank() const { return rank_; }
  fabric::NodeId host() const { return host_; }
  rdma::Nic& nic() { return nic_; }
  Communicator& comm() { return comm_; }
  const exec::DatapathCosts& costs() const { return costs_; }

  exec::Worker& app_worker() { return *app_worker_; }
  exec::Worker& send_worker(std::size_t i) {
    return *send_workers_[i % send_workers_.size()];
  }
  /// Costs for the send datapath (may run on a different engine).
  const exec::DatapathCosts& send_costs() const { return send_costs_; }
  exec::Worker& recv_worker(std::size_t i) {
    return *recv_workers_[i % recv_workers_.size()];
  }
  std::size_t num_send_workers() const { return send_workers_.size(); }
  std::size_t num_recv_workers() const { return recv_workers_.size(); }

  /// Link speed of this host's injection port (cutoff-timer input).
  double link_gbps() const;

  // --- control plane -------------------------------------------------------
  /// Posts a control message to `peer` (charged on the app worker).
  void ctrl_send(std::size_t peer, const CtrlMsg& msg);
  void register_ctrl(std::uint16_t op, CtrlHandler handler);
  void unregister_ctrl(std::uint16_t op);

  // --- P2P data plane (baselines + fetch layer) -----------------------------
  rdma::RcQp& data_qp(std::size_t peer);
  /// Completions of data-plane messages are dispatched like control
  /// messages: the immediate encodes a CtrlMsg naming the op.
  rdma::Cq& data_recv_cq() { return *data_rcq_; }
  rdma::Cq& data_send_cq() { return *data_scq_; }
  /// Registers the handler for this op's RDMA Read completions (fetch layer)
  /// and data sends (wr_id-keyed).
  void register_read_handler(std::uint16_t op,
                             std::function<void(const rdma::Cqe&)> handler);
  void unregister_read_handler(std::uint16_t op);

  // --- multicast fast path ---------------------------------------------------
  struct Subgroup {
    rdma::UdQp* ud = nullptr;
    rdma::UcQp* uc = nullptr;
    rdma::Cq* rcq = nullptr;
    rdma::Cq* scq = nullptr;
    std::uint64_t staging_base = 0;  // UD staging ring
    std::size_t posted = 0;          // receive WRs currently in the RQ
  };
  Subgroup& subgroup(std::size_t s) { return subgroups_[s]; }
  std::size_t num_subgroups() const { return subgroups_.size(); }
  void register_mcast_op(std::uint8_t tag, ChunkHandler handler);
  void unregister_mcast_op(std::uint8_t tag);
  /// Reposts a UD staging slot after its copy drained (UD datapath step 4).
  void repost_staging(std::size_t subgroup, std::uint64_t slot_addr);
  /// Tops up the zero-length receive WRs consumed by UC write-with-imm.
  void top_up_uc_recvs(std::size_t subgroup);

  std::uint64_t rnr_drops() const;

  /// Tracer row for this rank's protocol-phase spans (pid = rank, tid 0).
  telemetry::TrackId trace_track() const { return trace_track_; }

 private:
  friend class Communicator;
  void setup_workers();
  void setup_subgroups();
  void on_ctrl_cqe(const rdma::Cqe& cqe);
  void on_data_cqe(const rdma::Cqe& cqe);
  void on_data_send_cqe(const rdma::Cqe& cqe);
  void on_chunk_cqe(std::size_t subgroup, const rdma::Cqe& cqe);

  Communicator& comm_;
  std::size_t rank_;
  fabric::NodeId host_;
  rdma::Nic& nic_;
  exec::DatapathCosts costs_;
  exec::DatapathCosts send_costs_;
  exec::DatapathCosts cpu_costs_;  // app worker always runs on the host CPU

  exec::Worker* app_worker_ = nullptr;
  std::vector<exec::Worker*> send_workers_;
  std::vector<exec::Worker*> recv_workers_;
  telemetry::TrackId trace_track_ = 0;

  rdma::Cq* ctrl_rcq_ = nullptr;
  rdma::Cq* data_rcq_ = nullptr;
  rdma::Cq* data_scq_ = nullptr;
  // Indexed by peer rank (sized lazily to the communicator); ctrl_qp() runs
  // once per control message, so the lookup is a plain vector load.
  std::vector<rdma::RcQp*> ctrl_qps_;
  std::vector<rdma::RcQp*> data_qps_;
  std::unordered_map<std::uint16_t, CtrlHandler> ctrl_handlers_;
  std::unordered_map<std::uint16_t, std::function<void(const rdma::Cqe&)>>
      read_handlers_;
  std::unordered_map<std::uint8_t, ChunkHandler> mcast_ops_;
  std::vector<Subgroup> subgroups_;
};

// ---------------------------------------------------------------------------
// OpBase: a collective instance spanning all ranks
// ---------------------------------------------------------------------------

class OpBase {
 public:
  OpBase(Communicator& comm, std::string name);
  virtual ~OpBase();

  std::uint16_t id() const { return id_; }
  const std::string& name() const { return name_; }
  bool done() const;
  Time start_time() const { return start_time_; }
  Time finish_time() const;
  const std::vector<Time>& rank_finish() const { return finish_; }
  Phases max_phases() const;
  const Phases& rank_phases(std::size_t r) const { return phases_[r]; }
  std::uint64_t fetched_chunks() const { return fetched_chunks_; }
  std::uint64_t fetch_retries() const { return fetch_retries_; }
  std::uint64_t fetch_failovers() const { return fetch_failovers_; }
  bool watchdog_fired() const { return watchdog_fired_; }
  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  OpStatus status() const {
    if (failed_) return OpStatus::kFailed;
    return missing_blocks_.empty() ? OpStatus::kOk : OpStatus::kPartial;
  }
  const std::vector<std::size_t>& missing_blocks() const {
    return missing_blocks_;
  }
  std::uint64_t reroots() const { return reroots_; }
  std::uint64_t adapt_reroots() const { return adapt_reroots_; }
  std::uint64_t chain_demotions() const { return chain_demotions_; }
  std::uint64_t fetch_detours() const { return fetch_detours_; }
  bool rank_crashed(std::size_t r) const { return crashed_[r] != 0; }
  std::vector<std::size_t> crashed_ranks() const;

  /// Launches the op (records the start time, posts initial tasks).
  virtual void start() = 0;
  /// Byte-for-byte output validation (true in synthetic mode).
  virtual bool verify() const = 0;

  /// Completion hook for non-blocking drivers (the cluster scheduler): runs
  /// exactly once, from inside the engine, when the op transitions to
  /// done() — whether it completed, failed, or was settled by crashes. Set
  /// before or right after start(); the callback may start new ops but must
  /// not destroy this one.
  void set_on_done(std::function<void(OpBase&)> fn) { on_done_ = std::move(fn); }

  /// Physical-crash channel (from the cluster's fault plane): settle the
  /// dead rank's completion accounting so survivors alone gate done().
  /// Protocol repair is NOT triggered here — survivors act only on what
  /// their failure detector confirms (on_peer_confirmed_dead).
  void note_rank_crashed(std::size_t r);
  /// Detector channel: `observer` has confirmed `peer` dead. Crash-tolerant
  /// ops override this to repair their rings; the default ignores it (P2P
  /// baselines are not crash-tolerant — their watchdog-free variants rely
  /// on a healthy fabric).
  virtual void on_peer_confirmed_dead(std::size_t observer,
                                      std::size_t peer) {
    (void)observer;
    (void)peer;
  }
  /// Health-plane channel: `observer`'s monitor marked `peer` slow (or
  /// cleared it). Adaptive ops override this to shift work away from (or
  /// back to) the peer; the default ignores it.
  virtual void on_peer_slow(std::size_t observer, std::size_t peer,
                            bool slow) {
    (void)observer;
    (void)peer;
    (void)slow;
  }

 protected:
  void mark_started();
  void rank_done(std::size_t r);
  /// The cluster's telemetry bundle (metrics / tracer / flight recorder).
  telemetry::Telemetry& telem();
  /// Watchdog path: records the error, marks every unfinished rank complete
  /// at the current time so done() holds, and freezes further protocol
  /// callbacks behind failed().
  void fail_op(std::string error);

  Communicator& comm_;
  std::string name_;
  std::uint16_t id_;
  Time start_time_ = 0;
  std::vector<Time> finish_;
  std::vector<Phases> phases_;
  std::size_t completed_ = 0;
  std::uint64_t fetched_chunks_ = 0;
  std::uint64_t fetch_retries_ = 0;
  std::uint64_t fetch_failovers_ = 0;
  bool watchdog_fired_ = false;
  bool failed_ = false;
  std::string error_;
  std::vector<char> crashed_;  // physically crashed ranks
  std::vector<std::size_t> missing_blocks_;  // abandoned (sorted at finish)
  std::uint64_t reroots_ = 0;
  std::uint64_t adapt_reroots_ = 0;
  std::uint64_t chain_demotions_ = 0;
  std::uint64_t fetch_detours_ = 0;

 private:
  /// Notifies the communicator exactly once when the op transitions to
  /// done() (detector deactivation is refcounted on in-flight ops).
  void maybe_note_done();
  bool done_noted_ = false;
  std::function<void(OpBase&)> on_done_;
};

// ---------------------------------------------------------------------------
// Communicator
// ---------------------------------------------------------------------------

class Communicator {
 public:
  Communicator(Cluster& cluster, std::vector<fabric::NodeId> hosts,
               CommConfig config = {});
  ~Communicator();

  Cluster& cluster() { return cluster_; }
  const CommConfig& config() const { return config_; }
  std::size_t size() const { return eps_.size(); }
  Endpoint& ep(std::size_t rank) { return *eps_[rank]; }
  std::size_t rank_of_host(fabric::NodeId host) const;
  fabric::McastGroupId subgroup_group(std::size_t s) const {
    return groups_[s];
  }
  bool data_mode() const;  // false when the cluster runs payload-free

  /// Cutoff slack currently in effect: equal to `config().cutoff_alpha`
  /// until an op observes loss, then adaptively tightened (see CommConfig).
  Time effective_cutoff_alpha() const { return adaptive_alpha_; }

  // --- crash tolerance -------------------------------------------------------
  /// The lease-based failure detector; null when disabled in the config.
  FailureDetector* detector() { return detector_.get(); }
  /// The performance-fault health monitor; null unless config().adapt is
  /// enabled.
  HealthMonitor* health() { return health_.get(); }
  /// Multicast subgroup re-balancing: between ops, re-pins every rail-pinned
  /// subgroup whose rail plane has unhealthy links onto the healthiest rail
  /// (strictly fewer unhealthy dirs). No-op while any op is in flight, on
  /// single-rail fabrics, or without the health monitor. Called on every
  /// collective start; public so chaos drivers can force a decision point.
  void rebalance_subgroups();
  std::uint64_t subgroup_repins() const { return subgroup_repins_; }
  /// Aligns every member rank's host-memory bump pointer to the team-wide
  /// max before an op's symmetric buffer allocations. A single-tenant
  /// cluster is a no-op (all cursors already equal); with N communicators
  /// on overlapping host sets it restores the identical-offset invariant
  /// the mcast fetch layer and UC multicast writes rely on. Called on
  /// every collective start.
  void align_symmetric_heap();
  /// Physical truth from the fault plane: has this rank's host crashed?
  /// Used for op accounting and result reporting only — the protocol's own
  /// membership decisions go through the detector.
  bool rank_host_crashed(std::size_t rank) const {
    return host_crashed_[rank] != 0;
  }
  /// Membership view for new ops: a rank is presumed dead once its host
  /// crashed or any survivor's detector confirmed it. start_allgather on a
  /// shrunk communicator sources blocks from the presumed-alive ranks only.
  bool rank_presumed_dead(std::size_t rank) const {
    return rank_host_crashed(rank) ||
           (detector_ && detector_->confirmed_by_any(rank));
  }
  std::size_t presumed_alive() const;
  /// Op-lifecycle hooks (detector activation refcount).
  void note_op_started();
  void note_op_finished();

  // --- non-blocking API ------------------------------------------------------
  OpBase& start_broadcast(std::size_t root, std::uint64_t bytes,
                          BcastAlgo algo);
  OpBase& start_allgather(std::uint64_t bytes, AllgatherAlgo algo);
  OpBase& start_reduce_scatter(std::uint64_t block_bytes,
                               ReduceScatterAlgo algo);
  OpBase& start_barrier();

  // --- blocking API ----------------------------------------------------------
  OpResult broadcast(std::size_t root, std::uint64_t bytes, BcastAlgo algo);
  OpResult allgather(std::uint64_t bytes, AllgatherAlgo algo);
  OpResult reduce_scatter(std::uint64_t block_bytes, ReduceScatterAlgo algo);
  OpResult barrier();

  /// Runs the simulation until `op` completes and builds its result.
  OpResult finish(OpBase& op);

  /// Pairwise RC QP management (both directions created and connected).
  /// ctrl_qp/data_qp are cached communicator-wide meshes: the control plane
  /// multiplexes ops by immediate, and the fetch layer issues only RDMA
  /// Reads (no receive-WR consumption), so sharing is safe.
  rdma::RcQp& ctrl_qp(std::size_t from, std::size_t to);
  rdma::RcQp& data_qp(std::size_t from, std::size_t to);
  /// Dedicated (uncached) QP pair for one op's two-sided data stream —
  /// concurrent baselines must not interleave WR consumption on a shared
  /// receive queue. Returns (a-side, b-side).
  std::pair<rdma::RcQp*, rdma::RcQp*> create_qp_pair(std::size_t a,
                                                     std::size_t b);

  /// Stamps a QP with this communicator's tenant/QoS attributes (every QP
  /// creation site in the communicator goes through here). Control QPs
  /// arbitrate at band 0 regardless of tenant class — any tenant's tokens
  /// beat any tenant's bulk, mirroring the fabric's strict control lane.
  void tag_qp(rdma::Qp& qp, bool ctrl) const {
    qp.set_qos(config_.tenant, config_.qos_class, config_.qos_weight, ctrl);
  }

 private:
  friend class OpBase;
  OpResult run_blocking(OpBase& op);
  void note_op_loss(bool lossy);
  void on_host_crash(fabric::NodeId host, bool crashed);

  Cluster& cluster_;
  CommConfig config_;
  Time adaptive_alpha_ = 0;  // set from config in the constructor
  std::vector<std::unique_ptr<Endpoint>> eps_;
  std::unordered_map<fabric::NodeId, std::size_t> rank_of_;
  std::vector<fabric::McastGroupId> groups_;  // one per subgroup
  std::vector<std::unique_ptr<OpBase>> ops_;
  std::unique_ptr<FailureDetector> detector_;
  std::unique_ptr<HealthMonitor> health_;
  std::uint64_t subgroup_repins_ = 0;
  std::vector<char> host_crashed_;
  std::uint64_t crash_listener_id_ = 0;
  std::uint8_t next_tag_ = 1;

 public:
  /// Allocates the next fast-path op tag (8 bits, recycled modulo 256).
  std::uint8_t next_mcast_tag() {
    if (next_tag_ == 0) ++next_tag_;
    return next_tag_++;
  }
};

}  // namespace mccl::coll
