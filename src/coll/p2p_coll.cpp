#include "src/coll/p2p_coll.hpp"

#include <algorithm>

#include "src/coll/pattern.hpp"

namespace mccl::coll {

namespace {
/// Children of shifted rank `v` among P ranks for the given tree shape.
std::vector<std::size_t> tree_children(std::size_t v, std::size_t P,
                                       BcastAlgo algo) {
  std::vector<std::size_t> out;
  switch (algo) {
    case BcastAlgo::kBinomial: {
      // v may send to v + 2^i for every i below the position of v's lowest
      // set bit (v == 0: all i). Farthest child first.
      std::size_t limit = P;
      if (v != 0) limit = v & (~v + 1);  // lowest set bit
      std::size_t step = 1;
      while (step < limit && v + step < P) step <<= 1;
      for (std::size_t d = step; d >= 1; d >>= 1)
        if (d < limit && v + d < P) out.push_back(v + d);
      break;
    }
    case BcastAlgo::kBinaryTree:
      if (2 * v + 1 < P) out.push_back(2 * v + 1);
      if (2 * v + 2 < P) out.push_back(2 * v + 2);
      break;
    case BcastAlgo::kLinear:
      if (v == 0)
        for (std::size_t i = 1; i < P; ++i) out.push_back(i);
      break;
    default:
      MCCL_CHECK_MSG(false, "not a P2P broadcast algorithm");
  }
  return out;
}

std::size_t tree_parent(std::size_t v, BcastAlgo algo) {
  MCCL_CHECK(v != 0);
  switch (algo) {
    case BcastAlgo::kBinomial:
      return v & (v - 1);  // clear lowest set bit
    case BcastAlgo::kBinaryTree:
      return (v - 1) / 2;
    case BcastAlgo::kLinear:
      return 0;
    default:
      MCCL_CHECK_MSG(false, "not a P2P broadcast algorithm");
      return 0;
  }
}
}  // namespace

// ---------------------------------------------------------------------------
// P2PBroadcast
// ---------------------------------------------------------------------------

P2PBroadcast::P2PBroadcast(Communicator& comm, std::size_t root,
                           std::uint64_t bytes, BcastAlgo algo)
    : OpBase(comm, "p2p_broadcast"),
      root_(root),
      bytes_(bytes),
      algo_(algo) {
  const std::size_t P = comm.size();
  MCCL_CHECK(root < P && bytes > 0);
  st_.resize(P);
  const bool fill = comm_.data_mode();
  for (std::size_t r = 0; r < P; ++r) {
    RankState& s = st_[r];
    Endpoint& ep = comm_.ep(r);
    s.sendbuf = ep.nic().memory().alloc(bytes_);
    s.recvbuf = ep.nic().memory().alloc(bytes_);
    const std::size_t v = (r + P - root_) % P;
    for (const std::size_t cv : tree_children(v, P, algo_))
      s.children.push_back((cv + root_) % P);
    if (v != 0) s.parent = static_cast<int>((tree_parent(v, algo_) + root_) % P);
    if (fill && r == root_) fill_pattern(ep.nic().memory(), s.sendbuf, bytes_,
                                         id(), root_);
    ep.register_ctrl(id(), [this, r](const CtrlMsg& m, std::size_t src,
                                     const rdma::Cqe& cqe) {
      on_ctrl(r, m, src, cqe);
    });
    // Chained child sends complete through the data send CQ.
    ep.register_read_handler(id(), [this, r](const rdma::Cqe& cqe) {
      const std::size_t child_idx = static_cast<std::uint32_t>(cqe.wr_id);
      if (child_idx + 1 < st_[r].children.size())
        send_to_child(r, child_idx + 1,
                      r == root_ ? st_[r].sendbuf : st_[r].recvbuf);
    });
  }
  // Op-owned tree edges; pre-post the receive on the child side (zero-copy:
  // directly into the user buffer — the RC rendezvous path).
  for (std::size_t r = 0; r < P; ++r) {
    for (const std::size_t child : st_[r].children) {
      auto [pq, cq] = comm_.create_qp_pair(r, child);
      st_[r].child_qps.push_back(pq);
      st_[child].parent_qp = cq;
      cq->post_recv({.wr_id = 0, .laddr = st_[child].recvbuf,
                     .len = static_cast<std::uint32_t>(bytes_)});
    }
  }
}

P2PBroadcast::~P2PBroadcast() {
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    comm_.ep(r).unregister_ctrl(id());
    comm_.ep(r).unregister_read_handler(id());
  }
}

void P2PBroadcast::start() {
  mark_started();
  RankState& s = st_[root_];
  comm_.ep(root_).nic().post_local_copy(s.sendbuf, s.recvbuf, bytes_,
                                        [this] {
                                          st_[root_].local_copy_done = true;
                                          maybe_done(root_);
                                        });
  st_[root_].received = true;
  forward(root_, s.sendbuf);
}

void P2PBroadcast::forward(std::size_t r, std::uint64_t src_addr) {
  // Children are served strictly one after another (farthest subtree
  // first): posting them all at once would let the NIC QP arbiter
  // interleave the streams and delay the critical-path child by the whole
  // fan-out (a classic tree-broadcast pitfall).
  if (!st_[r].children.empty()) send_to_child(r, 0, src_addr);
  maybe_done(r);
}

void P2PBroadcast::send_to_child(std::size_t r, std::size_t child_idx,
                                 std::uint64_t src_addr) {
  Endpoint& ep = comm_.ep(r);
  ep.app_worker().post(ep.costs().control, [this, r, child_idx, src_addr] {
    rdma::SendFlags flags;
    flags.imm = encode_ctrl({CtrlType::kStep, id(), 0});
    flags.has_imm = true;
    flags.signaled = true;  // completion chains the next child
    flags.wr_id = (static_cast<std::uint64_t>(id()) << 32) | child_idx;
    st_[r].child_qps[child_idx]->post_send(src_addr, bytes_, flags);
  });
}

void P2PBroadcast::on_ctrl(std::size_t r, const CtrlMsg& msg,
                           std::size_t src, const rdma::Cqe& cqe) {
  (void)src;
  (void)cqe;
  MCCL_CHECK(msg.type == CtrlType::kStep);
  RankState& s = st_[r];
  MCCL_CHECK(!s.received);
  s.received = true;
  s.local_copy_done = true;
  forward(r, s.recvbuf);
}

void P2PBroadcast::maybe_done(std::size_t r) {
  RankState& s = st_[r];
  if (s.op_done || !s.received) return;
  if (r == root_ && !s.local_copy_done) return;
  s.op_done = true;
  phases_[r].transfer = comm_.cluster().engine().now() - start_time_;
  rank_done(r);
}

bool P2PBroadcast::verify() const {
  if (!comm_.data_mode()) return true;
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    if (!check_pattern(comm_.ep(r).nic().memory(), st_[r].recvbuf, bytes_,
                       id(), root_))
      return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// RingAllgather
// ---------------------------------------------------------------------------

RingAllgather::RingAllgather(Communicator& comm, std::uint64_t bytes)
    : OpBase(comm, "ring_allgather"), bytes_(bytes) {
  const std::size_t P = comm.size();
  MCCL_CHECK(P >= 2 && bytes > 0);
  st_.resize(P);
  const bool fill = comm_.data_mode();
  for (std::size_t r = 0; r < P; ++r) {
    RankState& s = st_[r];
    Endpoint& ep = comm_.ep(r);
    s.sendbuf = ep.nic().memory().alloc(bytes_);
    s.recvbuf = ep.nic().memory().alloc(bytes_ * P);
    if (fill) fill_pattern(ep.nic().memory(), s.sendbuf, bytes_, id(), r);
    ep.register_ctrl(id(), [this, r](const CtrlMsg& m, std::size_t src,
                                     const rdma::Cqe& cqe) {
      on_ctrl(r, m, src, cqe);
    });
  }
  // Op-owned ring edges; pre-post the P-1 receives toward the left
  // neighbor. RC delivers in order, and the left neighbor forwards blocks
  // (l), (l-1), ... so the landing offsets are known up front (zero-copy).
  for (std::size_t r = 0; r < P; ++r) {
    const std::size_t right = (r + 1) % P;
    auto [qa, qb] = comm_.create_qp_pair(r, right);
    st_[r].qp_right = qa;
    st_[right].qp_left = qb;
  }
  for (std::size_t r = 0; r < P; ++r) {
    for (std::size_t s = 0; s + 1 < P; ++s) {
      const std::size_t block = (r + P - 1 - s) % P;
      st_[r].qp_left->post_recv({.wr_id = s,
                                 .laddr = st_[r].recvbuf + block * bytes_,
                                 .len = static_cast<std::uint32_t>(bytes_)});
    }
  }
}

RingAllgather::~RingAllgather() {
  for (std::size_t r = 0; r < comm_.size(); ++r)
    comm_.ep(r).unregister_ctrl(id());
}

void RingAllgather::start() {
  mark_started();
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    RankState& s = st_[r];
    Endpoint& ep = comm_.ep(r);
    ep.nic().post_local_copy(s.sendbuf, s.recvbuf + r * bytes_, bytes_,
                             [this, r] {
                               st_[r].local_copy_done = true;
                               maybe_done(r);
                             });
    // Step 0: inject our own block from the send buffer.
    ep.app_worker().post(ep.costs().control, [this, r] {
      rdma::SendFlags flags;
      flags.imm = encode_ctrl({CtrlType::kStep, id(), 0});
      flags.has_imm = true;
      flags.signaled = false;
      st_[r].qp_right->post_send(st_[r].sendbuf, bytes_, flags);
    });
  }
}

void RingAllgather::send_block(std::size_t r, std::size_t block) {
  Endpoint& ep = comm_.ep(r);
  ep.app_worker().post(ep.costs().control, [this, r, block] {
    rdma::SendFlags flags;
    flags.imm = encode_ctrl({CtrlType::kStep, id(), 0});
    flags.has_imm = true;
    flags.signaled = false;
    st_[r].qp_right->post_send(st_[r].recvbuf + block * bytes_, bytes_,
                               flags);
  });
}

void RingAllgather::on_ctrl(std::size_t r, const CtrlMsg& msg,
                            std::size_t src, const rdma::Cqe& cqe) {
  (void)src;
  (void)cqe;
  MCCL_CHECK(msg.type == CtrlType::kStep);
  RankState& s = st_[r];
  const std::size_t P = comm_.size();
  const std::size_t step = s.steps_done++;
  const std::size_t block = (r + P - 1 - step) % P;
  if (step + 1 < P - 1) send_block(r, block);
  maybe_done(r);
}

void RingAllgather::maybe_done(std::size_t r) {
  RankState& s = st_[r];
  if (s.op_done || !s.local_copy_done || s.steps_done < comm_.size() - 1)
    return;
  s.op_done = true;
  phases_[r].transfer = comm_.cluster().engine().now() - start_time_;
  rank_done(r);
}

bool RingAllgather::verify() const {
  if (!comm_.data_mode()) return true;
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    for (std::size_t b = 0; b < comm_.size(); ++b) {
      if (!check_pattern(comm_.ep(r).nic().memory(),
                         st_[r].recvbuf + b * bytes_, bytes_, id(), b))
        return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// LinearAllgather
// ---------------------------------------------------------------------------

LinearAllgather::LinearAllgather(Communicator& comm, std::uint64_t bytes)
    : OpBase(comm, "linear_allgather"),
      bytes_(bytes),
      rkey_(comm.cluster().next_shared_rkey()) {
  const std::size_t P = comm.size();
  MCCL_CHECK(P >= 2 && bytes > 0);
  st_.resize(P);
  const bool fill = comm_.data_mode();
  for (std::size_t r = 0; r < P; ++r) {
    RankState& s = st_[r];
    Endpoint& ep = comm_.ep(r);
    s.sendbuf = ep.nic().memory().alloc(bytes_);
    s.recvbuf = ep.nic().memory().alloc(bytes_ * P);
    MCCL_CHECK(s.recvbuf == st_[0].recvbuf);
    ep.nic().mrs().register_with_rkey(s.recvbuf, bytes_ * P, rkey_);
    if (fill) fill_pattern(ep.nic().memory(), s.sendbuf, bytes_, id(), r);
    ep.register_ctrl(id(), [this, r](const CtrlMsg& m, std::size_t src,
                                     const rdma::Cqe& cqe) {
      on_ctrl(r, m, src, cqe);
    });
  }
  // Op-owned all-to-all mesh; one write-with-imm credit per peer QP.
  for (std::size_t r = 0; r < P; ++r) st_[r].peer_qps.resize(P, nullptr);
  for (std::size_t r = 0; r < P; ++r) {
    for (std::size_t p = r + 1; p < P; ++p) {
      auto [qa, qb] = comm_.create_qp_pair(r, p);
      st_[r].peer_qps[p] = qa;
      st_[p].peer_qps[r] = qb;
      qa->post_recv({});
      qb->post_recv({});
    }
  }
}

LinearAllgather::~LinearAllgather() {
  for (std::size_t r = 0; r < comm_.size(); ++r)
    comm_.ep(r).unregister_ctrl(id());
}

void LinearAllgather::start() {
  mark_started();
  const std::size_t P = comm_.size();
  for (std::size_t r = 0; r < P; ++r) {
    Endpoint& ep = comm_.ep(r);
    ep.nic().post_local_copy(st_[r].sendbuf, st_[r].recvbuf + r * bytes_,
                             bytes_, [this, r] {
                               st_[r].local_copy_done = true;
                               maybe_done(r);
                             });
    for (std::size_t off = 1; off < P; ++off) {
      const std::size_t peer = (r + off) % P;
      ep.app_worker().post(ep.costs().control, [this, r, peer] {
        rdma::SendFlags flags;
        flags.imm = encode_ctrl({CtrlType::kStep, id(), 0});
        flags.has_imm = true;
        flags.signaled = false;
        st_[r].peer_qps[peer]->post_write(st_[r].sendbuf, bytes_,
                                          st_[r].recvbuf + r * bytes_, rkey_,
                                          flags);
      });
    }
  }
}

void LinearAllgather::on_ctrl(std::size_t r, const CtrlMsg& msg,
                              std::size_t src, const rdma::Cqe& cqe) {
  (void)src;
  (void)cqe;
  MCCL_CHECK(msg.type == CtrlType::kStep);
  ++st_[r].blocks_received;
  maybe_done(r);
}

void LinearAllgather::maybe_done(std::size_t r) {
  RankState& s = st_[r];
  if (s.op_done || !s.local_copy_done ||
      s.blocks_received < comm_.size() - 1)
    return;
  s.op_done = true;
  phases_[r].transfer = comm_.cluster().engine().now() - start_time_;
  rank_done(r);
}

bool LinearAllgather::verify() const {
  if (!comm_.data_mode()) return true;
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    for (std::size_t b = 0; b < comm_.size(); ++b) {
      if (!check_pattern(comm_.ep(r).nic().memory(),
                         st_[r].recvbuf + b * bytes_, bytes_, id(), b))
        return false;
    }
  }
  return true;
}

}  // namespace mccl::coll
