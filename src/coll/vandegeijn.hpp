// Large-message P2P variants referenced by the paper's related work:
// van-de-Geijn broadcast (binomial/halving scatter + ring allgather, the
// production large-message algorithm, ~B/2 independent of P) and
// recursive-doubling allgather.
#pragma once

#include <vector>

#include "src/coll/communicator.hpp"

namespace mccl::coll {

class ScatterAllgatherBcast : public OpBase {
 public:
  ScatterAllgatherBcast(Communicator& comm, std::size_t root,
                        std::uint64_t bytes);
  ~ScatterAllgatherBcast() override;

  void start() override;
  bool verify() const override;

 private:
  struct ScatterEdge {
    rdma::RcQp* qp = nullptr;
    std::size_t range_lo = 0;  // shifted-piece range sent over this edge
    std::size_t range_hi = 0;
  };

  struct RankState {
    std::uint64_t sendbuf = 0;
    std::uint64_t recvbuf = 0;
    std::vector<ScatterEdge> scatter_sends;
    bool expects_scatter = false;
    bool scatter_received = false;
    bool local_copy_done = false;
    bool ring_started = false;
    std::size_t ring_steps = 0;
    std::vector<std::size_t> pending_forwards;  // pieces received before we
                                                // joined the ring
    rdma::RcQp* qp_left = nullptr;
    rdma::RcQp* qp_right = nullptr;
    bool op_done = false;
  };

  std::size_t actual(std::size_t shifted) const;
  std::uint64_t piece_off(std::size_t piece) const;
  std::uint64_t piece_len(std::size_t piece) const;
  void run_scatter(std::size_t r, std::uint64_t src_base);
  void begin_ring(std::size_t r);
  void send_piece(std::size_t r, std::size_t piece);
  void on_ctrl(std::size_t r, const CtrlMsg& msg, std::size_t src,
               const rdma::Cqe& cqe);
  void maybe_done(std::size_t r);

  std::size_t root_;
  std::uint64_t bytes_;
  std::vector<RankState> st_;
};

class RecDoublingAllgather : public OpBase {
 public:
  RecDoublingAllgather(Communicator& comm, std::uint64_t bytes);
  ~RecDoublingAllgather() override;

  void start() override;
  bool verify() const override;

 private:
  struct RankState {
    std::uint64_t sendbuf = 0;
    std::uint64_t recvbuf = 0;
    std::size_t round = 0;
    std::vector<std::size_t> seen;  // early arrivals per round
    bool local_copy_done = false;
    bool op_done = false;
    std::vector<rdma::RcQp*> partner_qps;  // one per round
  };

  void send_round(std::size_t r);
  void on_ctrl(std::size_t r, const CtrlMsg& msg, std::size_t src,
               const rdma::Cqe& cqe);

  std::uint64_t bytes_;
  std::size_t rounds_ = 0;
  std::vector<RankState> st_;
};

}  // namespace mccl::coll
