// The paper's contribution: constant-time reliable Broadcast over unreliable
// hardware multicast (Section III) and the bandwidth-optimal Allgather built
// as a composition of such Broadcasts (Section IV).
//
// One class implements both: a Broadcast is the single-root special case.
// Per-rank flow:
//
//   start ──► RNR barrier (dissemination over the RC control plane)
//         ──► [root, when chain-activated] send workers fragment the send
//             buffer per subgroup and post multicast sends in doorbell
//             batches; the last send's completion forwards the chain token
//         ──► [leaf] receive workers poll subgroup CQs: PSN from the CQE
//             immediate -> bitmap; UD chunks are DMA-copied from the staging
//             ring to the user buffer, UC(-multicast) chunks land directly
//         ──► cutoff timer (N/B_link + alpha): on expiry with missing
//             chunks, fetch-ring recovery — ask the left neighbor, await its
//             ACK (deferred until *it* is complete: recursion toward the
//             root), then selectively RDMA-Read the missing chunks
//         ──► final handshake: send Final left, await Final from the right
//             (the right neighbor may still fetch from us until then)
//         ──► buffer released; rank done.
//
// Hardening beyond the paper (fault injection, see fabric/faults.hpp): a
// fetch request that is not ACKed is retried with exponential backoff; after
// `fetch_retry_cap` attempts the rank fails over to the target's own left
// neighbor (skipping the unresponsive rank — the chain still terminates at
// the block root, which owns its block). An op-level watchdog (a multiple of
// the cutoff deadline) dumps protocol state and fails the op with a
// structured OpResult error when no recovery path exists (e.g. a partitioned
// fabric), instead of hanging the simulation.
//
// Crash tolerance (this layer's second hardening pass): each rank keeps its
// own membership view, seeded from the communicator's failure detector and
// extended by confirmations mid-op. On confirming a peer dead, a rank
//  - credits the barrier rounds whose token sender died,
//  - self-activates its multicast if the chain predecessor died (and chain
//    tokens route around dead successors),
//  - fails its fetches over past the dead target, discounting RDMA Reads
//    that can no longer complete,
//  - re-closes the final-handshake ring over survivors (resending its Final
//    when its left-alive neighbor changes),
//  - and, when a *block root* died, runs the root-repair protocol: every
//    survivor reports to the block's coordinator (first alive rank right of
//    the dead root) whether it holds the block in full; the coordinator
//    re-roots fetches at the lowest-rank surviving full holder, or declares
//    the block dead — survivors then complete degraded (OpResult::kPartial
//    with the exact missing-block set) instead of hanging or failing whole.
// Ranks that physically crashed are settled by OpBase::note_rank_crashed;
// the watchdog remains the backstop for the undetectable cases.
//
// Performance-fault adaptation (third hardening pass, driven by the
// communicator's HealthMonitor when enabled): each rank additionally keeps a
// *lagging* view of its peers — alive but slow. On a slow mark, a rank
//  - detours its fetch chains around lagging targets (preferring the first
//    non-lagging survivor to its left; the lagging rank stays the fallback),
//  - reports a lagging block root to the block's coordinator once it holds
//    the block in full (CtrlType::kSlowRoot); the coordinator re-roots the
//    block's fetch responsibility at that holder via the ordinary kReRoot
//    broadcast — no census quorum, since the root is alive and keeps
//    multicasting; only the slow-path ownership moves,
//  - and demotes lagging roots out of the chain token's critical path:
//    on_subgroup_sent passes the token to each lagging successor *and*
//    keeps walking to the first non-lagging one, overlapping the laggard's
//    multicast window instead of serializing behind it.
// All of it is inert (zero branches taken) when adaptation is disabled.
#pragma once

#include <vector>

#include "src/coll/chunk_map.hpp"
#include "src/coll/communicator.hpp"
#include "src/coll/sequencer.hpp"
#include "src/common/bitmap.hpp"

namespace mccl::coll {

class McastCollective : public OpBase {
 public:
  struct Params {
    std::vector<std::size_t> roots;  // block owners; block i = roots[i]
    std::uint64_t block_bytes = 0;
  };

  McastCollective(Communicator& comm, std::string name, Params params);
  ~McastCollective() override;

  void start() override;
  bool verify() const override;
  void on_peer_confirmed_dead(std::size_t observer,
                              std::size_t peer) override;
  void on_peer_slow(std::size_t observer, std::size_t peer,
                    bool slow) override;

  std::uint64_t recvbuf_addr(std::size_t rank) const {
    return st_[rank].recvbuf;
  }

  /// Prints per-rank protocol state to stderr (diagnostic aid for stuck
  /// simulations).
  void debug_dump() const;

  /// Validate-build audit of one rank's bookkeeping: chunk conservation
  /// (bitmap popcounts == received counter, per-block counts within bounds,
  /// received <= expected) and barrier-credit balance (at most one real
  /// token plus one death credit outstanding per round). Reports
  /// "coll.chunk_conservation" / "coll.barrier_credit_balance"; returns
  /// false if anything was reported. Always true in regular builds.
  bool validate_rank(std::size_t r) const;

  // --- validate-build fault-injection hooks (tests/test_validate.cpp) -----
  /// Skews the received-chunk counter away from the bitmaps so
  /// validate_rank trips "coll.chunk_conservation".
  void test_skew_received(std::size_t r, std::size_t delta) {
    st_[r].received += delta;
  }
  /// Over-credits a barrier round past the legal 2-token ceiling so
  /// validate_rank trips "coll.barrier_credit_balance".
  void test_overcredit_barrier(std::size_t r, std::size_t round) {
    st_[r].barrier_seen[round] += 3;
  }
  /// Feeds a census report straight into the coordinator state machine —
  /// a full -> not-full replay trips "coll.census_regression".
  void test_inject_block_report(std::size_t r, std::size_t block,
                                std::size_t src, bool holds_full) {
    on_block_report(r, block, src, holds_full);
  }
  /// Feeds a slow-root report straight into the coordinator state machine —
  /// a self-claimed full holding that the bitmaps contradict trips
  /// "adapt.ownership_conservation".
  void test_inject_slow_report(std::size_t r, std::size_t block,
                               std::size_t src, bool holds_full) {
    on_slow_root_report(r, block, src, holds_full);
  }

 private:
  /// One rank's fetch of one block through the hardened slow path.
  struct BlockFetch {
    bool active = false;
    bool acked = false;
    std::size_t target = 0;    // rank currently being asked
    std::size_t attempts = 0;  // requests sent to the current target
    std::uint64_t gen = 0;     // invalidates in-flight retry timers
    Time sent_at = 0;          // last request send (health latency samples)
    // RDMA Reads posted to the ACKing target and not yet completed. If the
    // target crashes, these never complete; the repair path discounts them
    // from pending_fetches and restarts the walk.
    std::size_t reads_outstanding = 0;
  };

  struct RankState {
    std::uint64_t sendbuf = 0;
    std::uint64_t recvbuf = 0;
    int root_index = -1;  // block owned by this rank, -1 if leaf only

    // Barrier.
    std::size_t barrier_round = 0;
    std::vector<std::size_t> barrier_seen;
    bool barrier_done = false;

    // Receive.
    std::vector<Bitmap> bitmaps;  // per subgroup, indexed by global chunk id
    std::size_t received = 0;
    std::size_t expected = 0;
    std::size_t pending_copies = 0;
    bool local_copy_done = false;
    bool data_complete = false;

    // Send.
    bool send_active = false;
    std::size_t subgroups_done = 0;
    bool send_done = false;

    // Reliability. Fetch coordination is *per block*: the fetch target
    // acks a block once it holds all of that block's chunks, so every
    // request chain terminates at the block's root — deadlock-free even
    // when every rank lost chunks (the worst case degenerates to a ring
    // Allgather, as the paper notes). The target starts as the left
    // neighbor and walks further left on failover.
    std::uint64_t timer_gen = 0;
    bool recovering = false;
    std::size_t pending_fetches = 0;
    std::vector<std::size_t> block_received;  // chunks held per block
    // Ranks whose fetch request for a block is deferred until we hold it.
    std::vector<std::vector<std::size_t>> fetch_waiters;
    std::vector<BlockFetch> fetch;  // our own per-block fetch progress

    // Handshake. Finals are latched per source: after ring repair the
    // final may arrive from any survivor, not just the static right
    // neighbor, and completion waits on the *right-alive* neighbor.
    bool final_sent = false;
    std::vector<char> finals_from;
    std::size_t final_sent_to = static_cast<std::size_t>(-1);
    bool op_done = false;

    // Crash repair: this rank's membership view (detector-seeded at op
    // start, extended by confirmations mid-op — never by physical truth).
    std::vector<char> peer_dead;
    std::vector<char> barrier_credited;  // per round: dead-sender credit
    std::vector<std::size_t> block_root;  // current root per block (re-root)
    std::vector<char> block_abandoned;    // kBlockDead received
    // Coordinator state (this rank may be a block's coordinator): flat
    // roots x P matrix, entry [block * P + rank]: 0 = no report,
    // 1 = reported not-full, 2 = full. Flat (one allocation, linear scans)
    // rather than a vector-of-vectors.
    std::vector<std::uint8_t> block_reports;
    std::vector<std::uint8_t> block_decision;  // 0 pending, 1 reroot, 2 dead
    std::vector<std::size_t> block_new_root;
    bool repairing = false;
    Time t_repair_begin = 0;

    // Performance-fault adaptation: this rank's lagging view (health-plane
    // slow marks; independent of peer_dead — a rank is never both).
    std::vector<char> peer_lagging;
    std::vector<char> slow_reported;  // per block: kSlowRoot report sent
    std::vector<char> slow_decision;  // per block: coordinator latch

    // Timestamps for the Fig 10 phase breakdown.
    Time t_start = 0, t_barrier = 0, t_data = 0, t_send_done = 0;
    Time t_recovery_begin = 0, t_recovery = 0;
  };

  bool is_root(std::size_t r) const { return st_[r].root_index >= 0; }
  std::size_t left_of(std::size_t r) const {
    return (r + comm_.size() - 1) % comm_.size();
  }
  std::size_t right_of(std::size_t r) const {
    return (r + 1) % comm_.size();
  }
  /// First rank left of `from` that `r` considers alive (skipping `r`'s
  /// dead set and never returning a rank other than `r` twice around);
  /// returns `r` itself when no other survivor exists.
  std::size_t left_alive_of(std::size_t r, std::size_t from) const;
  /// First rank right of `r` that `r` considers alive; `r` if sole survivor.
  std::size_t right_alive_of(std::size_t r) const;

  // Barrier.
  void barrier_kick(std::size_t r);
  void barrier_send_round(std::size_t r);
  void barrier_advance(std::size_t r);
  void on_barrier_done(std::size_t r);
  /// Credits barrier rounds whose token sender this rank considers dead.
  void credit_barrier(std::size_t r);

  // Send path.
  void activate_send(std::size_t r);
  void send_batch(std::size_t r, std::size_t sg, std::size_t pos);
  void on_subgroup_sent(std::size_t r, std::size_t sg);

  // Receive path.
  void on_chunk(std::size_t r, std::uint32_t chunk, std::size_t sg,
                const rdma::Cqe& cqe);
  bool set_chunk(std::size_t r, std::uint32_t id);
  void check_data_complete(std::size_t r);
  /// Every foreign block either fully received or abandoned.
  bool all_blocks_satisfied(std::size_t r) const;
  /// Sends (or re-sends, after ring repair) this rank's Final to its
  /// current left-alive neighbor.
  void send_final(std::size_t r);

  // Reliability.
  void arm_cutoff(std::size_t r);
  void on_cutoff(std::size_t r, std::uint64_t gen);
  void on_block_complete(std::size_t r, std::size_t block);
  void start_fetch(std::size_t r, std::size_t block, std::size_t target);
  void arm_fetch_retry(std::size_t r, std::size_t block);
  void on_fetch_retry(std::size_t r, std::size_t block, std::uint64_t gen);
  void on_fetch_ack(std::size_t r, std::size_t block, std::size_t src);
  void on_read_done(std::size_t r, const rdma::Cqe& cqe);

  // Crash repair.
  void note_repair(std::size_t r);
  void repair_fetches(std::size_t r, std::size_t dead);
  std::size_t coordinator_of(std::size_t r, std::size_t block) const;
  void send_block_report(std::size_t r, std::size_t block);
  void on_block_report(std::size_t r, std::size_t block, std::size_t src,
                       bool holds_full);
  void maybe_decide_block(std::size_t r, std::size_t block);
  void send_decision_to(std::size_t r, std::size_t block, std::size_t peer);
  /// `eager`: start the slow-path fetch immediately (root is dead, the
  /// multicast will never deliver). Slow re-roots pass false — the displaced
  /// root is alive and still multicasting, so only the fetch-chain terminus
  /// moves and fetches already aimed at the laggard are re-aimed.
  void apply_reroot(std::size_t r, std::size_t block, std::size_t new_root,
                    bool eager = true);
  void apply_block_dead(std::size_t r, std::size_t block);

  // Performance-fault adaptation (all inert when the communicator has no
  // health monitor: peer_lagging never sets).
  /// Drop-in for left_alive_of that prefers the first *non-lagging*
  /// survivor left of `from`, falling back to the first survivor when
  /// everyone lags; `detoured` reports whether a lagging rank was skipped.
  std::size_t fetch_target_of(std::size_t r, std::size_t from,
                              bool* detoured) const;
  void report_slow_root(std::size_t r, std::size_t block);
  void on_slow_root_report(std::size_t r, std::size_t block, std::size_t src,
                           bool holds_full);

  // Watchdog (op-level hard deadline).
  Time cutoff_deadline(std::size_t r) const;
  void arm_watchdog();
  void on_watchdog();

  // Handshake / completion.
  void on_ctrl(std::size_t r, const CtrlMsg& msg, std::size_t src,
               const rdma::Cqe& cqe);
  void check_op_done(std::size_t r);

  /// Non-owning view of one subgroup's block-local chunk indices (CSR row).
  struct IdxSpan {
    const std::uint32_t* ptr;
    std::size_t count;
    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    std::uint32_t operator[](std::size_t i) const { return ptr[i]; }
  };
  IdxSpan sg_indices(std::size_t sg) const {
    return IdxSpan{sg_indices_flat_.data() + sg_off_[sg],
                   sg_off_[sg + 1] - sg_off_[sg]};
  }

  Params p_;
  ChunkMap map_;
  ChainSchedule schedule_;
  std::uint8_t tag_;
  std::uint32_t rkey_;
  std::size_t barrier_rounds_;
  std::vector<RankState> st_;
  // Block-local chunk indices per subgroup (shared by all blocks), CSR:
  // subgroup sg spans sg_indices_flat_[sg_off_[sg] .. sg_off_[sg + 1]).
  // The send path walks one row per batch — contiguous, no outer vector.
  std::vector<std::uint32_t> sg_indices_flat_;
  std::vector<std::uint32_t> sg_off_;
};

}  // namespace mccl::coll
