// The paper's contribution: constant-time reliable Broadcast over unreliable
// hardware multicast (Section III) and the bandwidth-optimal Allgather built
// as a composition of such Broadcasts (Section IV).
//
// One class implements both: a Broadcast is the single-root special case.
// Per-rank flow:
//
//   start ──► RNR barrier (dissemination over the RC control plane)
//         ──► [root, when chain-activated] send workers fragment the send
//             buffer per subgroup and post multicast sends in doorbell
//             batches; the last send's completion forwards the chain token
//         ──► [leaf] receive workers poll subgroup CQs: PSN from the CQE
//             immediate -> bitmap; UD chunks are DMA-copied from the staging
//             ring to the user buffer, UC(-multicast) chunks land directly
//         ──► cutoff timer (N/B_link + alpha): on expiry with missing
//             chunks, fetch-ring recovery — ask the left neighbor, await its
//             ACK (deferred until *it* is complete: recursion toward the
//             root), then selectively RDMA-Read the missing chunks
//         ──► final handshake: send Final left, await Final from the right
//             (the right neighbor may still fetch from us until then)
//         ──► buffer released; rank done.
//
// Hardening beyond the paper (fault injection, see fabric/faults.hpp): a
// fetch request that is not ACKed is retried with exponential backoff; after
// `fetch_retry_cap` attempts the rank fails over to the target's own left
// neighbor (skipping the unresponsive rank — the chain still terminates at
// the block root, which owns its block). An op-level watchdog (a multiple of
// the cutoff deadline) dumps protocol state and fails the op with a
// structured OpResult error when no recovery path exists (e.g. a partitioned
// fabric), instead of hanging the simulation.
#pragma once

#include <vector>

#include "src/coll/chunk_map.hpp"
#include "src/coll/communicator.hpp"
#include "src/coll/sequencer.hpp"
#include "src/common/bitmap.hpp"

namespace mccl::coll {

class McastCollective : public OpBase {
 public:
  struct Params {
    std::vector<std::size_t> roots;  // block owners; block i = roots[i]
    std::uint64_t block_bytes = 0;
  };

  McastCollective(Communicator& comm, std::string name, Params params);
  ~McastCollective() override;

  void start() override;
  bool verify() const override;

  std::uint64_t recvbuf_addr(std::size_t rank) const {
    return st_[rank].recvbuf;
  }

  /// Prints per-rank protocol state to stderr (diagnostic aid for stuck
  /// simulations).
  void debug_dump() const;

 private:
  /// One rank's fetch of one block through the hardened slow path.
  struct BlockFetch {
    bool active = false;
    bool acked = false;
    std::size_t target = 0;    // rank currently being asked
    std::size_t attempts = 0;  // requests sent to the current target
    std::uint64_t gen = 0;     // invalidates in-flight retry timers
  };

  struct RankState {
    std::uint64_t sendbuf = 0;
    std::uint64_t recvbuf = 0;
    int root_index = -1;  // block owned by this rank, -1 if leaf only

    // Barrier.
    std::size_t barrier_round = 0;
    std::vector<std::size_t> barrier_seen;
    bool barrier_done = false;

    // Receive.
    std::vector<Bitmap> bitmaps;  // per subgroup, indexed by global chunk id
    std::size_t received = 0;
    std::size_t expected = 0;
    std::size_t pending_copies = 0;
    bool local_copy_done = false;
    bool data_complete = false;

    // Send.
    bool send_active = false;
    std::size_t subgroups_done = 0;
    bool send_done = false;

    // Reliability. Fetch coordination is *per block*: the fetch target
    // acks a block once it holds all of that block's chunks, so every
    // request chain terminates at the block's root — deadlock-free even
    // when every rank lost chunks (the worst case degenerates to a ring
    // Allgather, as the paper notes). The target starts as the left
    // neighbor and walks further left on failover.
    std::uint64_t timer_gen = 0;
    bool recovering = false;
    std::size_t pending_fetches = 0;
    std::vector<std::size_t> block_received;  // chunks held per block
    // Ranks whose fetch request for a block is deferred until we hold it.
    std::vector<std::vector<std::size_t>> fetch_waiters;
    std::vector<BlockFetch> fetch;  // our own per-block fetch progress

    // Handshake.
    bool final_sent = false;
    bool final_from_right = false;
    bool op_done = false;

    // Timestamps for the Fig 10 phase breakdown.
    Time t_start = 0, t_barrier = 0, t_data = 0, t_send_done = 0;
    Time t_recovery_begin = 0, t_recovery = 0;
  };

  bool is_root(std::size_t r) const { return st_[r].root_index >= 0; }
  std::size_t left_of(std::size_t r) const {
    return (r + comm_.size() - 1) % comm_.size();
  }
  std::size_t right_of(std::size_t r) const {
    return (r + 1) % comm_.size();
  }

  // Barrier.
  void barrier_kick(std::size_t r);
  void barrier_send_round(std::size_t r);
  void barrier_advance(std::size_t r);
  void on_barrier_done(std::size_t r);

  // Send path.
  void activate_send(std::size_t r);
  void send_batch(std::size_t r, std::size_t sg, std::size_t pos);
  void on_subgroup_sent(std::size_t r, std::size_t sg);

  // Receive path.
  void on_chunk(std::size_t r, std::uint32_t chunk, std::size_t sg,
                const rdma::Cqe& cqe);
  bool set_chunk(std::size_t r, std::uint32_t id);
  void check_data_complete(std::size_t r);

  // Reliability.
  void arm_cutoff(std::size_t r);
  void on_cutoff(std::size_t r, std::uint64_t gen);
  void on_block_complete(std::size_t r, std::size_t block);
  void start_fetch(std::size_t r, std::size_t block, std::size_t target);
  void arm_fetch_retry(std::size_t r, std::size_t block);
  void on_fetch_retry(std::size_t r, std::size_t block, std::uint64_t gen);
  void on_fetch_ack(std::size_t r, std::size_t block, std::size_t src);
  void on_read_done(std::size_t r, const rdma::Cqe& cqe);

  // Watchdog (op-level hard deadline).
  Time cutoff_deadline(std::size_t r) const;
  void arm_watchdog();
  void on_watchdog();

  // Handshake / completion.
  void on_ctrl(std::size_t r, const CtrlMsg& msg, std::size_t src,
               const rdma::Cqe& cqe);
  void check_op_done(std::size_t r);

  Params p_;
  ChunkMap map_;
  ChainSchedule schedule_;
  std::uint8_t tag_;
  std::uint32_t rkey_;
  std::size_t barrier_rounds_;
  std::vector<RankState> st_;
  // Block-local chunk indices per subgroup (shared by all blocks).
  std::vector<std::vector<std::size_t>> sg_indices_;
};

}  // namespace mccl::coll
