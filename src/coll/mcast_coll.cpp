#include "src/coll/mcast_coll.hpp"

#include <algorithm>

#include "src/debug/validate.hpp"
#include "src/sim/callback.hpp"

#include "src/coll/pattern.hpp"

namespace mccl::coll {

namespace {
std::size_t ceil_log2(std::size_t n) {
  std::size_t k = 0, v = 1;
  while (v < n) {
    v *= 2;
    ++k;
  }
  return k;
}
}  // namespace

McastCollective::McastCollective(Communicator& comm, std::string name,
                                 Params params)
    : OpBase(comm, std::move(name)),
      p_(std::move(params)),
      map_(p_.block_bytes, comm.config().chunk_bytes,
           comm.config().subgroups, p_.roots.size()),
      schedule_(p_.roots.size(), std::min(comm.config().chains,
                                          p_.roots.size())),
      tag_(comm.next_mcast_tag()),
      rkey_(comm.cluster().next_shared_rkey()),
      barrier_rounds_(ceil_log2(comm.size())) {
  const std::size_t P = comm_.size();
  MCCL_CHECK(P >= 2);
  MCCL_CHECK(!p_.roots.empty());
  if (comm_.config().transport == Transport::kUd) {
    MCCL_CHECK_MSG(comm_.config().chunk_bytes <=
                       comm_.cluster().config().nic.mtu,
                   "UD chunks must fit in the MTU");
  }
  MCCL_CHECK_MSG(map_.total_chunks() < (1u << kChunkBits),
                 "send buffer too large for the PSN immediate bits");

  // Block-local chunk index -> subgroup partition (identical for every
  // block; precomputed once). Counting sort into CSR: ascending i within
  // each subgroup, exactly the order the old per-subgroup push_backs gave.
  sg_off_.assign(map_.subgroups + 1, 0);
  for (std::size_t i = 0; i < map_.chunks_per_block(); ++i)
    ++sg_off_[map_.subgroup_of(map_.id_of(0, i)) + 1];
  for (std::size_t sg = 0; sg < map_.subgroups; ++sg)
    sg_off_[sg + 1] += sg_off_[sg];
  sg_indices_flat_.resize(map_.chunks_per_block());
  std::vector<std::uint32_t> cursor(sg_off_.begin(), sg_off_.end() - 1);
  for (std::size_t i = 0; i < map_.chunks_per_block(); ++i)
    sg_indices_flat_[cursor[map_.subgroup_of(map_.id_of(0, i))]++] =
        static_cast<std::uint32_t>(i);

  st_.resize(P);
  const bool fill = comm_.data_mode();
  for (std::size_t r = 0; r < P; ++r) {
    RankState& s = st_[r];
    Endpoint& ep = comm_.ep(r);
    auto& mem = ep.nic().memory();
    // Symmetric allocation: identical offsets on every rank let the fetch
    // layer and UC multicast writes target one agreed remote address.
    s.sendbuf = mem.alloc(p_.block_bytes);
    s.recvbuf = mem.alloc(p_.block_bytes * map_.blocks);
    MCCL_CHECK_MSG(s.recvbuf == st_[0].recvbuf,
                   "asymmetric receive buffer allocation");
    ep.nic().mrs().register_with_rkey(s.recvbuf,
                                      p_.block_bytes * map_.blocks, rkey_);
    for (std::size_t b = 0; b < p_.roots.size(); ++b)
      if (p_.roots[b] == r) s.root_index = static_cast<int>(b);
    if (fill) fill_pattern(mem, s.sendbuf, p_.block_bytes, id(), r);

    s.barrier_seen.assign(barrier_rounds_ == 0 ? 1 : barrier_rounds_, 0);
    s.barrier_credited.assign(barrier_rounds_ == 0 ? 1 : barrier_rounds_, 0);
    s.block_received.assign(p_.roots.size(), 0);
    s.fetch_waiters.assign(p_.roots.size(), {});
    s.fetch.assign(p_.roots.size(), BlockFetch{});
    s.finals_from.assign(P, 0);
    s.peer_dead.assign(P, 0);
    s.block_root = p_.roots;
    s.block_abandoned.assign(p_.roots.size(), 0);
    s.block_reports.assign(p_.roots.size() * P, 0);
    s.block_decision.assign(p_.roots.size(), 0);
    s.block_new_root.assign(p_.roots.size(), 0);
    s.peer_lagging.assign(P, 0);
    s.slow_reported.assign(p_.roots.size(), 0);
    s.slow_decision.assign(p_.roots.size(), 0);
    // Seed the membership view from this rank's detector: peers confirmed
    // dead in earlier ops stay dead (crash-stop), so a new op never waits
    // on them.
    if (FailureDetector* det = comm.detector()) {
      for (std::size_t p = 0; p < P; ++p)
        if (p != r && det->dead(r, p)) s.peer_dead[p] = 1;
    }
    // Likewise the lagging view from the health monitor: a peer marked slow
    // in an earlier op is avoided from the start of this one (it clears
    // through the monitor's hysteresis, not per op).
    if (HealthMonitor* hm = comm.health()) {
      for (std::size_t p = 0; p < P; ++p)
        if (p != r && hm->slow(r, p)) s.peer_lagging[p] = 1;
    }
    s.bitmaps.reserve(map_.subgroups);
    for (std::size_t sg = 0; sg < map_.subgroups; ++sg)
      s.bitmaps.emplace_back(map_.total_chunks());
    const std::size_t foreign_blocks =
        p_.roots.size() - (s.root_index >= 0 ? 1 : 0);
    s.expected = foreign_blocks * map_.chunks_per_block();
    s.local_copy_done = s.root_index < 0;  // roots copy their block locally

    // Handlers.
    ep.register_mcast_op(tag_, [this, r](std::uint32_t chunk, std::size_t sg,
                                         const rdma::Cqe& cqe) {
      on_chunk(r, chunk, sg, cqe);
    });
    ep.register_ctrl(id(), [this, r](const CtrlMsg& m, std::size_t src,
                                     const rdma::Cqe& cqe) {
      on_ctrl(r, m, src, cqe);
    });
    ep.register_read_handler(id(), [this, r](const rdma::Cqe& cqe) {
      on_read_done(r, cqe);
    });
  }
}

McastCollective::~McastCollective() {
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    Endpoint& ep = comm_.ep(r);
    ep.unregister_mcast_op(tag_);
    ep.unregister_ctrl(id());
    ep.unregister_read_handler(id());
  }
}

void McastCollective::start() {
  mark_started();
  if (done()) return;  // every rank was already crashed
  arm_watchdog();
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    if (rank_crashed(r)) continue;  // dead hosts run nothing
    st_[r].t_start = start_time_;
    barrier_kick(r);
    if (is_root(r)) {
      // Roots place their own block into the receive region through the
      // local DMA engine (also the fetch-layer source of last resort).
      RankState& s = st_[r];
      Endpoint& ep = comm_.ep(r);
      const std::uint64_t dst =
          s.recvbuf + static_cast<std::size_t>(s.root_index) * p_.block_bytes;
      ep.nic().post_local_copy(s.sendbuf, dst, p_.block_bytes, [this, r] {
        if (failed_ || rank_crashed(r)) return;
        RankState& s2 = st_[r];
        s2.local_copy_done = true;
        const auto own = static_cast<std::size_t>(s2.root_index);
        s2.block_received[own] = map_.chunks_per_block();
        on_block_complete(r, own);
        check_data_complete(r);
      });
    }
  }
}

std::size_t McastCollective::left_alive_of(std::size_t r,
                                           std::size_t from) const {
  std::size_t x = left_of(from);
  while (x != r && st_[r].peer_dead[x]) x = left_of(x);
  return x;  // r itself when no other survivor exists
}

std::size_t McastCollective::right_alive_of(std::size_t r) const {
  std::size_t x = right_of(r);
  while (x != r && st_[r].peer_dead[x]) x = right_of(x);
  return x;
}

// --------------------------------------------------------------------------
// Barrier (dissemination): round k sends to (r + 2^k) mod P and waits for a
// token from (r - 2^k) mod P. Completes in ceil(log2 P) rounds for any P.
// --------------------------------------------------------------------------

void McastCollective::barrier_kick(std::size_t r) {
  if (barrier_rounds_ == 0) {
    on_barrier_done(r);
    return;
  }
  credit_barrier(r);  // peers already dead at op start never send tokens
  barrier_send_round(r);
}

void McastCollective::barrier_send_round(std::size_t r) {
  RankState& s = st_[r];
  const std::size_t P = comm_.size();
  const std::size_t dist = std::size_t{1} << s.barrier_round;
  const std::size_t dst = (r + dist) % P;
  if (!s.peer_dead[dst])
    comm_.ep(r).ctrl_send(dst, {CtrlType::kBarrier, id(),
                                static_cast<std::uint16_t>(s.barrier_round)});
  barrier_advance(r);
}

void McastCollective::credit_barrier(std::size_t r) {
  RankState& s = st_[r];
  const std::size_t P = comm_.size();
  for (std::size_t k = 0; k < barrier_rounds_; ++k) {
    if (s.barrier_credited[k]) continue;
    const std::size_t dist = std::size_t{1} << k;
    const std::size_t sender = (r + P - dist) % P;
    if (!s.peer_dead[sender]) continue;
    // The round-k token sender is dead: grant the token it can no longer
    // send. Credited at most once per round; a token that did get out
    // before the crash leaves a harmless surplus in barrier_seen.
    s.barrier_credited[k] = 1;
    ++s.barrier_seen[k];
    MCCL_VALIDATE_THAT(s.barrier_seen[k] <= 2, "coll.barrier_credit_balance",
                       "rank %zu: round %zu has %zu outstanding tokens "
                       "(max 2: one real + one death credit)",
                       r, k, s.barrier_seen[k]);
  }
}

void McastCollective::barrier_advance(std::size_t r) {
  RankState& s = st_[r];
  while (s.barrier_round < barrier_rounds_ &&
         s.barrier_seen[s.barrier_round] > 0) {
    --s.barrier_seen[s.barrier_round];
    ++s.barrier_round;
    if (s.barrier_round < barrier_rounds_) {
      barrier_send_round(r);
      return;  // continuation driven by the next token
    }
  }
  if (s.barrier_round >= barrier_rounds_ && !s.barrier_done)
    on_barrier_done(r);
}

void McastCollective::on_barrier_done(std::size_t r) {
  RankState& s = st_[r];
  s.barrier_done = true;
  s.t_barrier = comm_.cluster().engine().now();
  arm_cutoff(r);
  if (is_root(r)) {
    const auto my = static_cast<std::size_t>(s.root_index);
    // Chain heads start immediately; a root whose chain predecessor died
    // will never see its activation token and self-activates.
    if (schedule_.is_chain_head(my) || s.peer_dead[p_.roots[my - 1]])
      activate_send(r);
  }
  // Degenerate case: nothing to receive (single-root broadcast at the root).
  check_data_complete(r);
}

// --------------------------------------------------------------------------
// Send path
// --------------------------------------------------------------------------

void McastCollective::activate_send(std::size_t r) {
  RankState& s = st_[r];
  MCCL_CHECK(is_root(r));
  // Idempotent: after ring repair a root can be activated both by a late
  // chain token and by its predecessor's death confirmation.
  if (s.send_active) return;
  s.send_active = true;
  for (std::size_t sg = 0; sg < map_.subgroups; ++sg) send_batch(r, sg, 0);
}

void McastCollective::send_batch(std::size_t r, std::size_t sg,
                                 std::size_t pos) {
  Endpoint& ep = comm_.ep(r);
  const IdxSpan indices = sg_indices(sg);
  if (indices.empty()) {
    on_subgroup_sent(r, sg);
    return;
  }
  const std::size_t batch =
      std::min(comm_.config().send_batch, indices.size() - pos);
  const exec::Cost cost =
      exec::Cost{ep.send_costs().send_post.instr * batch,
                 ep.send_costs().send_post.stall * batch} +
      ep.send_costs().doorbell;
  auto task = [this, r, sg, pos, batch] {
    if (failed_ || rank_crashed(r)) return;
    Endpoint& ep = comm_.ep(r);
    RankState& s = st_[r];
    const IdxSpan indices = sg_indices(sg);
    Endpoint::Subgroup& g = ep.subgroup(sg);
    const std::size_t block = static_cast<std::size_t>(s.root_index);
    for (std::size_t k = 0; k < batch; ++k) {
      const std::size_t idx = indices[pos + k];
      const std::uint32_t id32 = map_.id_of(block, idx);
      const bool last = pos + k + 1 == indices.size();
      rdma::SendFlags flags;
      flags.imm = encode_chunk_imm(tag_, id32);
      flags.has_imm = true;
      flags.signaled = last;  // doorbell batching: only the tail reports
      flags.wr_id = flags.imm;
      const std::uint64_t laddr = s.sendbuf + map_.send_offset_of(id32);
      const std::uint32_t len = map_.len_of(id32);
      if (comm_.config().transport == Transport::kUd) {
        g.ud->post_send(rdma::UdDest::multicast(comm_.subgroup_group(sg)),
                        laddr, len, flags);
      } else {
        const std::uint64_t raddr = s.recvbuf + map_.offset_of(id32);
        g.uc->post_write(laddr, len, raddr, rkey_, flags);
      }
    }
    if (pos + batch < indices.size()) send_batch(r, sg, pos + batch);
  };
  // Runs once per chunk batch: the capture must stay within the worker
  // queue's inline budget or every batch pays an allocation.
  static_assert(sizeof(task) <= sim::InlineCallback::kInlineBytes);
  ep.send_worker(sg).post(cost, std::move(task));
}

void McastCollective::on_subgroup_sent(std::size_t r, std::size_t sg) {
  (void)sg;
  RankState& s = st_[r];
  if (++s.subgroups_done < map_.subgroups) return;
  s.send_done = true;
  s.t_send_done = comm_.cluster().engine().now();
  // Pass the activation token to the next root in the chain that is still
  // alive. The root after a skipped (dead) one may also self-activate once
  // it confirms the death itself — token and repair are deliberately
  // redundant, and activation is idempotent. A *lagging* successor still
  // gets its token (it must send eventually) but no longer gates the
  // healthy tail: the walk continues to the first non-lagging survivor,
  // which is activated concurrently (chain demotion — the laggard's
  // multicast window overlaps the healthy chain instead of serializing it).
  int next = schedule_.successor(static_cast<std::size_t>(s.root_index));
  while (next >= 0) {
    const std::size_t root = p_.roots[static_cast<std::size_t>(next)];
    if (s.peer_dead[root]) {
      next = schedule_.successor(static_cast<std::size_t>(next));
      continue;
    }
    comm_.ep(r).ctrl_send(root, {CtrlType::kChainToken, id(), 0});
    if (!s.peer_lagging[root]) break;
    ++chain_demotions_;
    telem().recorder.record(comm_.cluster().engine().now(),
                            static_cast<std::int32_t>(r),
                            telemetry::EventCat::kAdapt, "chain_demote", root,
                            static_cast<std::uint64_t>(next));
    next = schedule_.successor(static_cast<std::size_t>(next));
  }
  check_op_done(r);
}

// --------------------------------------------------------------------------
// Receive path
// --------------------------------------------------------------------------

void McastCollective::on_chunk(std::size_t r, std::uint32_t chunk,
                               std::size_t sg, const rdma::Cqe& cqe) {
  if (failed_ || rank_crashed(r)) return;
  if (cqe.opcode == rdma::CqeOpcode::kSend) {
    on_subgroup_sent(r, sg);
    return;
  }
  RankState& s = st_[r];
  MCCL_CHECK_MSG(static_cast<int>(map_.block_of(chunk)) != s.root_index,
                 "received a chunk of our own block");
  if (!set_chunk(r, chunk)) return;  // duplicate (fetch/late-arrival race)

  if (comm_.config().transport == Transport::kUd) {
    // Staging -> user buffer copy through the NIC DMA engine; the staging
    // slot is reposted only once its bytes have drained. Capture audit:
    // 32 bytes here; the NIC's completion wrapper (this + src/dst/len +
    // the owned callback) lands exactly on the engine's 64-byte inline
    // budget — see the kInlineBytes comment in sim/callback.hpp before
    // adding captures.
    Endpoint& ep = comm_.ep(r);
    const std::uint64_t slot = cqe.wr_id;
    const std::uint64_t dst = s.recvbuf + map_.offset_of(chunk);
    ++s.pending_copies;
    ep.nic().post_local_copy(slot, dst, map_.len_of(chunk),
                             [this, r, sg, slot] {
                               RankState& s2 = st_[r];
                               --s2.pending_copies;
                               comm_.ep(r).repost_staging(sg, slot);
                               check_data_complete(r);
                             });
  }
  check_data_complete(r);
}

bool McastCollective::set_chunk(std::size_t r, std::uint32_t id) {
  RankState& s = st_[r];
  Bitmap& bm = s.bitmaps[map_.subgroup_of(id)];
  if (!bm.set(id)) return false;
  ++s.received;
  const std::size_t block = map_.block_of(id);
  ++s.block_received[block];
  // Conservation: the bitmap dedup above is the only admission gate, so a
  // per-block count past the block size (or more chunks than the op
  // expects) means two accounting paths double-counted one chunk.
  MCCL_VALIDATE_THAT(s.block_received[block] <= map_.chunks_per_block(),
                     "coll.chunk_conservation",
                     "rank %zu: block %zu holds %zu chunks but blocks have "
                     "only %zu",
                     r, block, s.block_received[block],
                     map_.chunks_per_block());
  MCCL_VALIDATE_THAT(s.received <= s.expected, "coll.chunk_conservation",
                     "rank %zu: received %zu chunks, expected at most %zu",
                     r, s.received, s.expected);
  if (s.block_received[block] == map_.chunks_per_block())
    on_block_complete(r, block);
  return true;
}

void McastCollective::check_data_complete(std::size_t r) {
  RankState& s = st_[r];
  if (failed_ || rank_crashed(r) || s.data_complete || !s.barrier_done)
    return;
  if (s.pending_copies > 0 || !s.local_copy_done || !all_blocks_satisfied(r))
    return;
  s.data_complete = true;
  s.t_data = comm_.cluster().engine().now();
  if (s.recovering) s.t_recovery = s.t_data - s.t_recovery_begin;
  ++s.timer_gen;  // cancel the cutoff timer
  send_final(r);
  check_op_done(r);
}

bool McastCollective::all_blocks_satisfied(std::size_t r) const {
  const RankState& s = st_[r];
  for (std::size_t b = 0; b < p_.roots.size(); ++b) {
    if (static_cast<int>(b) == s.root_index) continue;
    if (s.block_received[b] < map_.chunks_per_block() &&
        !s.block_abandoned[b])
      return false;
  }
  return true;
}

void McastCollective::send_final(std::size_t r) {
  // Final handshake: tell the left-alive neighbor we are complete (the
  // static left neighbor pre-repair). A sole survivor has nobody to tell.
  RankState& s = st_[r];
  const std::size_t dst = left_alive_of(r, r);
  s.final_sent = true;
  if (dst == r) return;
  s.final_sent_to = dst;
  comm_.ep(r).ctrl_send(dst, {CtrlType::kFinal, id(), 0});
}

// --------------------------------------------------------------------------
// Reliability slow path
// --------------------------------------------------------------------------

Time McastCollective::cutoff_deadline(std::size_t r) const {
  const std::uint64_t expected_bytes =
      static_cast<std::uint64_t>(st_[r].expected) * map_.chunk_bytes;
  // N/B_link plus per-schedule-step slack (chain tokens serialize the
  // roots) plus the (adaptively tightened) alpha for synchronization noise.
  return serialization_time(expected_bytes, comm_.ep(r).link_gbps()) +
         static_cast<Time>(schedule_.chain_len) * 10 * kMicrosecond +
         comm_.effective_cutoff_alpha();
}

void McastCollective::arm_cutoff(std::size_t r) {
  RankState& s = st_[r];
  const std::uint64_t gen = s.timer_gen;
  comm_.cluster().engine().schedule(cutoff_deadline(r),
                                    [this, r, gen] { on_cutoff(r, gen); });
}

void McastCollective::on_cutoff(std::size_t r, std::uint64_t gen) {
  RankState& s = st_[r];
  if (failed_ || rank_crashed(r) || gen != s.timer_gen || s.data_complete)
    return;
  // Without the reliability layer there is no slow path; the watchdog is
  // the only thing standing between a lossy fabric and a hang.
  if (!comm_.config().reliability) return;
  if (s.recovering) return;
  s.recovering = true;
  s.t_recovery_begin = comm_.cluster().engine().now();
  telemetry::Telemetry& te = telem();
  te.recorder.record(s.t_recovery_begin, static_cast<std::int32_t>(r),
                     telemetry::EventCat::kColl, "cutoff_recovery", id(),
                     s.expected - s.received);
  if (te.tracer.enabled())
    te.tracer.instant(comm_.ep(r).trace_track(), "cutoff",
                      s.t_recovery_begin, "coll");
  // Health plane: *differential* lateness only. In a uniformly lossy world
  // every block is a little short at cutoff — that indicts the fabric, not
  // any root. A slow root shows as one block far behind (< half the chunks
  // of the best-progressed peer block); only those roots are sampled. Fed
  // first — a resulting slow mark re-enters this op through on_peer_slow,
  // so the target pick below sees the freshest lagging view.
  if (HealthMonitor* hm = comm_.health()) {
    std::size_t best = 0;
    for (std::size_t b = 0; b < p_.roots.size(); ++b)
      if (static_cast<int>(b) != s.root_index &&
          s.block_received[b] > best)
        best = s.block_received[b];
    for (std::size_t b = 0; b < p_.roots.size(); ++b) {
      if (static_cast<int>(b) == s.root_index) continue;
      if (s.block_received[b] * 2 < best && !s.block_abandoned[b] &&
          !s.peer_dead[s.block_root[b]] && s.block_root[b] != r)
        hm->note_block_late(r, s.block_root[b]);
    }
  }
  // One fetch request per incomplete block: the target acks each block as
  // soon as it holds it in full. The first target is the left-alive
  // neighbor (the static left neighbor unless it already died), detoured
  // past lagging survivors when the health plane marked any.
  bool detoured = false;
  const std::size_t tgt = fetch_target_of(r, r, &detoured);
  if (tgt == r) return;  // sole survivor: nothing to fetch from
  if (detoured)
    telem().recorder.record(comm_.cluster().engine().now(),
                            static_cast<std::int32_t>(r),
                            telemetry::EventCat::kAdapt, "fetch_detour",
                            static_cast<std::uint64_t>(-1), tgt);
  for (std::size_t b = 0; b < p_.roots.size(); ++b) {
    if (static_cast<int>(b) == s.root_index) continue;
    if (s.block_received[b] < map_.chunks_per_block() &&
        !s.block_abandoned[b]) {
      if (detoured) ++fetch_detours_;
      start_fetch(r, b, tgt);
    }
  }
}

void McastCollective::on_block_complete(std::size_t r, std::size_t block) {
  RankState& s = st_[r];
  // Deferred slow-root report: the first ranks to assemble a lagging
  // root's block in full are exactly the ownership candidates — report as
  // soon as we qualify (the on_peer_slow sweep only catches blocks already
  // held full at mark time).
  if (comm_.health() != nullptr && static_cast<int>(block) != s.root_index &&
      !s.slow_reported[block] && !s.block_abandoned[block] &&
      s.block_root[block] != r && s.peer_lagging[s.block_root[block]] &&
      !s.peer_dead[s.block_root[block]])
    report_slow_root(r, block);
  // Serve every rank whose fetch request was deferred until we held the
  // block (pre-hardening this could only be the right neighbor).
  for (const std::size_t waiter : s.fetch_waiters[block])
    comm_.ep(r).ctrl_send(waiter, {CtrlType::kFetchAck, id(),
                                   static_cast<std::uint16_t>(block)});
  s.fetch_waiters[block].clear();
  // Cancel our own outstanding fetch of this block (multicast raced the
  // slow path); a late ACK is ignored via the `acked` latch.
  BlockFetch& f = s.fetch[block];
  if (f.active && !f.acked) {
    f.active = false;
    ++f.gen;
  }
}

void McastCollective::start_fetch(std::size_t r, std::size_t block,
                                  std::size_t target) {
  RankState& s = st_[r];
  MCCL_CHECK(target != r);
  BlockFetch& f = s.fetch[block];
  f.active = true;
  f.acked = false;
  f.target = target;
  f.attempts = 1;
  f.reads_outstanding = 0;
  f.sent_at = comm_.cluster().engine().now();
  ++f.gen;
  telem().recorder.record(comm_.cluster().engine().now(),
                          static_cast<std::int32_t>(r),
                          telemetry::EventCat::kColl, "fetch_start", block,
                          target);
  comm_.ep(r).ctrl_send(target, {CtrlType::kFetchReq, id(),
                                 static_cast<std::uint16_t>(block)});
  arm_fetch_retry(r, block);
}

void McastCollective::arm_fetch_retry(std::size_t r, std::size_t block) {
  const BlockFetch& f = st_[r].fetch[block];
  if (comm_.config().fetch_retry_timeout == 0) return;  // retries disabled
  // Exponential backoff per attempt against the current target.
  const Time delay = comm_.config().fetch_retry_timeout
                     << (f.attempts > 0 ? f.attempts - 1 : 0);
  const std::uint64_t gen = f.gen;
  comm_.cluster().engine().schedule(
      delay, [this, r, block, gen] { on_fetch_retry(r, block, gen); });
}

void McastCollective::on_fetch_retry(std::size_t r, std::size_t block,
                                     std::uint64_t gen) {
  RankState& s = st_[r];
  BlockFetch& f = s.fetch[block];
  if (failed_ || rank_crashed(r) || !f.active || f.acked || gen != f.gen)
    return;
  if (s.block_received[block] == map_.chunks_per_block()) return;
  if (s.block_abandoned[block]) return;
  // Health plane: an unanswered fetch request is the strongest slow signal.
  // Fed before acting — the resulting slow mark may detour this very fetch
  // (through on_peer_slow), which bumps f.gen; bail out if it did.
  if (HealthMonitor* hm = comm_.health()) {
    hm->note_fetch_timeout(r, f.target);
    if (!f.active || f.acked || gen != f.gen) return;
    if (s.block_received[block] == map_.chunks_per_block() ||
        s.block_abandoned[block])
      return;
  }
  if (f.attempts < comm_.config().fetch_retry_cap) {
    // Same target, another request: the original (or its ACK) may have
    // been lost on a degraded link.
    ++f.attempts;
    ++fetch_retries_;
    f.sent_at = comm_.cluster().engine().now();
    telemetry::Telemetry& te = telem();
    te.recorder.record(comm_.cluster().engine().now(),
                       static_cast<std::int32_t>(r),
                       telemetry::EventCat::kColl, "fetch_retry", block,
                       f.target);
    if (te.tracer.enabled())
      te.tracer.instant(comm_.ep(r).trace_track(), "fetch_retry",
                        comm_.cluster().engine().now(), "coll");
    comm_.ep(r).ctrl_send(f.target, {CtrlType::kFetchReq, id(),
                                     static_cast<std::uint16_t>(block)});
    arm_fetch_retry(r, block);
    return;
  }
  // Retries exhausted: the target is unreachable or stuck. Fail over one
  // step further left, skipping ranks this rank knows are dead. The chain
  // still terminates at the block root (which completes its block through
  // the local copy); if even the root is unreachable the watchdog ends the
  // op.
  std::size_t next = left_of(f.target);
  while ((next == r || s.peer_dead[next]) && next != f.target)
    next = left_of(next);  // never fetch from ourselves or a dead rank
  if (next == f.target || next == r) return;  // nowhere else to go
  if (s.peer_lagging[next]) {
    // Adaptive detour: keep walking for a non-lagging survivor no farther
    // away than the static choice (same rule as fetch_target_of — never
    // trade a laggard for a longer path); the lagging candidate stays the
    // fallback when everyone further lags.
    const fabric::Topology& topo = comm_.cluster().fabric().topology();
    const fabric::NodeId here = comm_.ep(r).host();
    const int base_dist = topo.distance(here, comm_.ep(next).host());
    std::size_t alt = left_of(next);
    while (alt != f.target &&
           (alt == r || s.peer_dead[alt] || s.peer_lagging[alt] ||
            topo.distance(here, comm_.ep(alt).host()) > base_dist))
      alt = left_of(alt);
    if (alt != f.target && alt != r && !s.peer_lagging[alt] &&
        topo.distance(here, comm_.ep(alt).host()) <= base_dist) {
      next = alt;
      ++fetch_detours_;
      telem().recorder.record(comm_.cluster().engine().now(),
                              static_cast<std::int32_t>(r),
                              telemetry::EventCat::kAdapt, "fetch_detour",
                              block, next);
    }
  }
  ++fetch_failovers_;
  f.target = next;
  f.attempts = 1;
  f.sent_at = comm_.cluster().engine().now();
  ++f.gen;
  telemetry::Telemetry& te = telem();
  te.recorder.record(comm_.cluster().engine().now(),
                     static_cast<std::int32_t>(r),
                     telemetry::EventCat::kColl, "fetch_failover", block,
                     next);
  if (te.tracer.enabled())
    te.tracer.instant(comm_.ep(r).trace_track(), "fetch_failover",
                      comm_.cluster().engine().now(), "coll");
  comm_.ep(r).ctrl_send(f.target, {CtrlType::kFetchReq, id(),
                                   static_cast<std::uint16_t>(block)});
  arm_fetch_retry(r, block);
}

void McastCollective::on_fetch_ack(std::size_t r, std::size_t block,
                                   std::size_t src) {
  RankState& s = st_[r];
  if (failed_ || rank_crashed(r) || s.data_complete) return;
  if (s.block_abandoned[block]) return;  // decided dead while the ACK flew
  BlockFetch& f = s.fetch[block];
  if (f.acked) return;  // duplicate ACK (retry raced the original)
  f.acked = true;
  ++f.gen;  // cancel pending retry timers
  // Health plane: request->ACK latency of the serving target (measured
  // from the latest request — retries reset the clock).
  if (HealthMonitor* hm = comm_.health()) {
    if (f.active && src == f.target)
      hm->note_fetch_ack(r, src,
                         comm_.cluster().engine().now() - f.sent_at);
  }
  telem().recorder.record(comm_.cluster().engine().now(),
                          static_cast<std::int32_t>(r),
                          telemetry::EventCat::kColl, "fetch_ack", block,
                          src);
  // Collect this block's chunks still missing at ACK time (some may have
  // raced in through the multicast path).
  std::vector<std::uint32_t> missing;
  missing.reserve(map_.chunks_per_block());
  const std::uint32_t begin = map_.id_of(block, 0);
  const std::uint32_t end =
      begin + static_cast<std::uint32_t>(map_.chunks_per_block());
  for (std::uint32_t id32 = begin; id32 < end; ++id32) {
    if (!s.bitmaps[map_.subgroup_of(id32)].test(id32))
      missing.push_back(id32);
  }
  if (missing.empty()) {
    if (s.pending_fetches == 0) check_data_complete(r);
    return;
  }
  fetched_chunks_ += missing.size();
  Endpoint& ep = comm_.ep(r);
  s.pending_fetches += missing.size();
  f.reads_outstanding = missing.size();
  for (const std::uint32_t id32 : missing) {
    auto task = [this, r, src, id32] {
      if (failed_ || rank_crashed(r)) return;
      RankState& s2 = st_[r];
      Endpoint& ep2 = comm_.ep(r);
      rdma::SendFlags flags;
      flags.signaled = true;
      flags.wr_id = (static_cast<std::uint64_t>(id()) << 32) | id32;
      // Symmetric layout: the chunk lives at the same offset in the
      // ACKing rank's receive buffer (the left neighbor normally, a
      // further-left rank after failover).
      ep2.data_qp(src).post_read(s2.recvbuf + map_.offset_of(id32),
                                 map_.len_of(id32),
                                 s2.recvbuf + map_.offset_of(id32), rkey_,
                                 flags);
    };
    // Per missing chunk: must stay inline in the worker queue.
    static_assert(sizeof(task) <= sim::InlineCallback::kInlineBytes);
    ep.recv_worker(0).post(ep.costs().fetch_post, std::move(task));
  }
}

void McastCollective::on_read_done(std::size_t r, const rdma::Cqe& cqe) {
  RankState& s = st_[r];
  if (failed_ || rank_crashed(r)) return;
  MCCL_CHECK(cqe.opcode == rdma::CqeOpcode::kRead);
  const std::uint32_t id32 = static_cast<std::uint32_t>(cqe.wr_id);
  set_chunk(r, id32);  // may be a duplicate if multicast raced the fetch
  BlockFetch& f = s.fetch[map_.block_of(id32)];
  if (f.reads_outstanding > 0) --f.reads_outstanding;
  MCCL_CHECK(s.pending_fetches > 0);
  if (--s.pending_fetches == 0) check_data_complete(r);
}

// --------------------------------------------------------------------------
// Crash repair. Driven purely by the failure detector's *confirmations*
// (the survivors' protocol view) — never by physical crash truth, which
// only the op-accounting layer (note_rank_crashed) may consult.
// --------------------------------------------------------------------------

void McastCollective::on_peer_confirmed_dead(std::size_t observer,
                                             std::size_t peer) {
  const std::size_t r = observer;
  RankState& s = st_[r];
  if (failed_ || rank_crashed(r) || s.peer_dead[peer]) return;
  s.peer_dead[peer] = 1;
  note_repair(r);
  // (1) Barrier: credit rounds whose token sender just died.
  if (!s.barrier_done) {
    credit_barrier(r);
    barrier_advance(r);
  }
  // (2) Chain: self-activate if the chain predecessor died before passing
  // the token (the predecessor's predecessor also routes around, so this
  // is redundant — and activate_send is idempotent).
  if (is_root(r) && !s.send_active && s.barrier_done) {
    const auto my = static_cast<std::size_t>(s.root_index);
    if (!schedule_.is_chain_head(my) && s.peer_dead[p_.roots[my - 1]])
      activate_send(r);
  }
  // (3) Fetches aimed at the dead rank fail over immediately.
  repair_fetches(r, peer);
  // (4) Root repair: a block whose current root is now dead needs a
  // survivor census. Re-report also when the previous *coordinator* died
  // (coordinator_of shifts right, and the new coordinator needs our
  // report).
  for (std::size_t b = 0; b < p_.roots.size(); ++b) {
    if (s.peer_dead[s.block_root[b]] && !s.block_abandoned[b] &&
        s.block_decision[b] == 0)
      send_block_report(r, b);
  }
  // (5) Handshake ring re-closure: if our Final went to a rank that died,
  // resend it to the new left-alive neighbor.
  if (s.data_complete && s.final_sent) {
    const std::size_t dst = left_alive_of(r, r);
    if (dst != r && dst != s.final_sent_to) {
      s.final_sent_to = dst;
      comm_.ep(r).ctrl_send(dst, {CtrlType::kFinal, id(), 0});
      telem().recorder.record(comm_.cluster().engine().now(),
                              static_cast<std::int32_t>(r),
                              telemetry::EventCat::kColl, "final_resend",
                              dst, peer);
    }
  }
  // (6) A dead rank no longer owes the coordinator a report: decisions
  // that were waiting on it can now fall.
  for (std::size_t b = 0; b < p_.roots.size(); ++b) maybe_decide_block(r, b);
  // (7) Completion re-check: the dead rank may have been the only thing
  // this rank was waiting on (its Final, or its block now abandoned).
  check_data_complete(r);
  check_op_done(r);
}

void McastCollective::note_repair(std::size_t r) {
  RankState& s = st_[r];
  if (s.repairing) return;
  s.repairing = true;
  s.t_repair_begin = comm_.cluster().engine().now();
  telem().recorder.record(s.t_repair_begin, static_cast<std::int32_t>(r),
                          telemetry::EventCat::kColl, "repair_begin", id(),
                          0);
}

void McastCollective::repair_fetches(std::size_t r, std::size_t dead) {
  RankState& s = st_[r];
  for (std::size_t b = 0; b < p_.roots.size(); ++b) {
    BlockFetch& f = s.fetch[b];
    if (!f.active || f.target != dead) continue;
    if (s.block_received[b] == map_.chunks_per_block() ||
        s.block_abandoned[b]) {
      f.active = false;
      ++f.gen;
      continue;
    }
    // RDMA Reads posted to the dead target never complete; discount them
    // so pending_fetches can reach zero again.
    if (f.acked && f.reads_outstanding > 0) {
      MCCL_CHECK(s.pending_fetches >= f.reads_outstanding);
      s.pending_fetches -= f.reads_outstanding;
      f.reads_outstanding = 0;
    }
    ++fetch_failovers_;
    telem().recorder.record(comm_.cluster().engine().now(),
                            static_cast<std::int32_t>(r),
                            telemetry::EventCat::kColl, "fetch_dead_target",
                            b, dead);
    bool det = false;
    const std::size_t next = fetch_target_of(r, f.target, &det);
    if (next == r) {  // no surviving target; root repair decides the block
      f.active = false;
      ++f.gen;
      continue;
    }
    if (det) {
      ++fetch_detours_;
      telem().recorder.record(comm_.cluster().engine().now(),
                              static_cast<std::int32_t>(r),
                              telemetry::EventCat::kAdapt, "fetch_detour", b,
                              next);
    }
    start_fetch(r, b, next);
  }
}

std::size_t McastCollective::coordinator_of(std::size_t r,
                                            std::size_t block) const {
  // First rank right of the dead root that this rank considers alive; may
  // be r itself. Views can transiently disagree across ranks — the
  // re-report rule in on_peer_confirmed_dead reconciles them.
  const RankState& s = st_[r];
  const std::size_t d = s.block_root[block];
  std::size_t x = right_of(d);
  while (x != d && s.peer_dead[x]) x = right_of(x);
  return x;
}

void McastCollective::send_block_report(std::size_t r, std::size_t block) {
  RankState& s = st_[r];
  const std::size_t c = coordinator_of(r, block);
  const bool full = s.block_received[block] == map_.chunks_per_block();
  telem().recorder.record(comm_.cluster().engine().now(),
                          static_cast<std::int32_t>(r),
                          telemetry::EventCat::kColl, "block_report", block,
                          c);
  if (c == r) {
    on_block_report(r, block, r, full);
    return;
  }
  MCCL_CHECK(block < (std::size_t{1} << 15));
  comm_.ep(r).ctrl_send(
      c, {CtrlType::kBlockReport, id(),
          static_cast<std::uint16_t>((block << 1) | (full ? 1u : 0u))});
}

void McastCollective::on_block_report(std::size_t r, std::size_t block,
                                      std::size_t src, bool holds_full) {
  RankState& s = st_[r];
  if (s.block_decision[block] != 0) {
    // Decision already made; a late reporter (its own confirmation lagged)
    // just gets the verdict replayed.
    if (src != r) send_decision_to(r, block, src);
    return;
  }
  std::uint8_t& cell = s.block_reports[block * comm_.size() + src];
  // Census monotonicity: holding a full block is stable (chunks are never
  // un-received), so a reporter may upgrade not-full -> full but a
  // full -> not-full replay means the census is lying to the coordinator.
  MCCL_VALIDATE_THAT(!(cell == 2 && !holds_full), "coll.census_regression",
                     "rank %zu: block %zu reporter %zu regressed "
                     "full -> not-full",
                     r, block, src);
  cell = holds_full ? 2 : 1;
  maybe_decide_block(r, block);
}

void McastCollective::maybe_decide_block(std::size_t r, std::size_t block) {
  RankState& s = st_[r];
  if (s.block_decision[block] != 0) return;
  if (!s.peer_dead[s.block_root[block]]) return;  // root (still) alive
  if (coordinator_of(r, block) != r) return;      // not our call
  const std::size_t P = comm_.size();
  const std::uint8_t* reports = &s.block_reports[block * P];
  for (std::size_t x = 0; x < P; ++x) {
    if (s.peer_dead[x] || x == r) continue;
    if (reports[x] == 0) return;  // census incomplete
  }
  // Our own report may arrive via send_block_report(c == r) or not at all
  // (we confirmed the root dead only after becoming coordinator); count
  // ourselves directly.
  s.block_reports[block * P + r] =
      s.block_received[block] == map_.chunks_per_block() ? 2 : 1;
  std::size_t holder = P;
  for (std::size_t x = 0; x < P; ++x) {
    if (s.peer_dead[x]) continue;
    if (reports[x] == 2) {
      holder = x;
      break;  // lowest-rank surviving full holder
    }
  }
  const Time now = comm_.cluster().engine().now();
  telemetry::Telemetry& te = telem();
  if (holder < P) {
    s.block_decision[block] = 1;
    s.block_new_root[block] = holder;
    ++reroots_;
    te.recorder.record(now, static_cast<std::int32_t>(r),
                       telemetry::EventCat::kColl, "block_reroot", block,
                       holder);
    if (te.tracer.enabled())
      te.tracer.instant(comm_.ep(r).trace_track(), "block_reroot", now,
                        "coll");
  } else {
    s.block_decision[block] = 2;
    // Degraded completion: record the block as unrecoverable at op level
    // (once — several coordinators can reach the same verdict for
    // different blocks, not the same one, but be safe).
    if (std::find(missing_blocks_.begin(), missing_blocks_.end(), block) ==
        missing_blocks_.end())
      missing_blocks_.push_back(block);
    te.recorder.record(now, static_cast<std::int32_t>(r),
                       telemetry::EventCat::kColl, "block_dead", block,
                       s.block_root[block]);
    if (te.tracer.enabled())
      te.tracer.instant(comm_.ep(r).trace_track(), "block_dead", now,
                        "coll");
  }
  for (std::size_t x = 0; x < P; ++x) {
    if (x == r || s.peer_dead[x]) continue;
    send_decision_to(r, block, x);
  }
  if (s.block_decision[block] == 1)
    apply_reroot(r, block, s.block_new_root[block]);
  else
    apply_block_dead(r, block);
}

void McastCollective::send_decision_to(std::size_t r, std::size_t block,
                                       std::size_t peer) {
  const RankState& s = st_[r];
  if (s.block_decision[block] == 1) {
    const std::size_t h = s.block_new_root[block];
    MCCL_CHECK(block < 256 && h < 256);
    comm_.ep(r).ctrl_send(
        peer, {CtrlType::kReRoot, id(),
               static_cast<std::uint16_t>((block << 8) | h)});
  } else {
    comm_.ep(r).ctrl_send(peer, {CtrlType::kBlockDead, id(),
                                 static_cast<std::uint16_t>(block)});
  }
}

void McastCollective::apply_reroot(std::size_t r, std::size_t block,
                                   std::size_t new_root, bool eager) {
  RankState& s = st_[r];
  const std::size_t old_root = s.block_root[block];
  s.block_root[block] = new_root;  // future root-deaths census against this
  // One *slow* re-root per block per op, cluster-wide: re-rooting moves the
  // coordinator (right of the new root), whose slow_decision latch would
  // otherwise be fresh — lagging marks on the new root would cascade the
  // ownership around the ring.
  if (!eager) s.slow_decision[block] = 1;
  // A *slow* re-root reaches the displaced root alive: it owns the block's
  // data by construction and must never fetch it.
  if (static_cast<int>(block) == s.root_index) return;
  if (s.block_abandoned[block] || rank_crashed(r) || s.data_complete) return;
  if (s.block_received[block] == map_.chunks_per_block()) return;
  BlockFetch& f = s.fetch[block];
  // Reads already in flight from a live holder will complete; leave them.
  if (f.active && f.acked) return;
  if (!eager) {
    // Lazy re-root: the multicast is still delivering, so nobody rushes to
    // the slow path (an eager fan-in of every incomplete rank on the one
    // full holder costs more than the laggard does). Only a fetch already
    // pointed at the displaced root is re-aimed at the new terminus.
    if (f.active && f.target == old_root && new_root != r)
      start_fetch(r, block, new_root);
    return;
  }
  if (!s.recovering) {
    s.recovering = true;
    s.t_recovery_begin = comm_.cluster().engine().now();
  }
  if (new_root != r) start_fetch(r, block, new_root);
}

void McastCollective::apply_block_dead(std::size_t r, std::size_t block) {
  RankState& s = st_[r];
  if (s.block_abandoned[block]) return;
  if (s.block_received[block] == map_.chunks_per_block()) return;  // we hold it
  s.block_abandoned[block] = 1;
  BlockFetch& f = s.fetch[block];
  if (f.active) {
    if (f.acked && f.reads_outstanding > 0) {
      MCCL_CHECK(s.pending_fetches >= f.reads_outstanding);
      s.pending_fetches -= f.reads_outstanding;
      f.reads_outstanding = 0;
    }
    f.active = false;
    ++f.gen;
  }
  s.fetch_waiters[block].clear();  // nobody can be served a dead block
  telem().recorder.record(comm_.cluster().engine().now(),
                          static_cast<std::int32_t>(r),
                          telemetry::EventCat::kColl, "block_abandoned",
                          block, 0);
  check_data_complete(r);
}

// --------------------------------------------------------------------------
// Performance-fault adaptation. Driven by the communicator's health monitor
// (slow marks fan out through on_peer_slow exactly like death confirmations
// through on_peer_confirmed_dead); everything here is per-observer view,
// deterministic, and inert when adaptation is disabled.
// --------------------------------------------------------------------------

std::size_t McastCollective::fetch_target_of(std::size_t r, std::size_t from,
                                             bool* detoured) const {
  const RankState& s = st_[r];
  const fabric::Topology& topo = comm_.cluster().fabric().topology();
  const fabric::NodeId here = comm_.ep(r).host();
  std::size_t first_alive = r;
  int base_dist = 0;
  std::size_t x = left_of(from);
  while (x != r) {
    if (!s.peer_dead[x]) {
      if (first_alive == r) {
        first_alive = x;
        base_dist = topo.distance(here, comm_.ep(x).host());
      }
      // A detour must never trade a slow peer for a longer path: a
      // cross-leaf hop rides trunks the health plane may not have scored
      // yet, and a degraded trunk costs far more than any laggard.
      if (!s.peer_lagging[x] &&
          topo.distance(here, comm_.ep(x).host()) <= base_dist) {
        if (detoured != nullptr) *detoured = x != first_alive;
        return x;
      }
    }
    x = left_of(x);
  }
  if (detoured != nullptr) *detoured = false;
  return first_alive;  // r itself when no other survivor exists
}

void McastCollective::on_peer_slow(std::size_t observer, std::size_t peer,
                                   bool slow) {
  const std::size_t r = observer;
  RankState& s = st_[r];
  if (failed_ || rank_crashed(r) || s.op_done) return;
  if (s.peer_lagging[peer] == static_cast<char>(slow ? 1 : 0)) return;
  s.peer_lagging[peer] = slow ? 1 : 0;
  // A clear only stops future avoidance: detours and re-roots already made
  // stay (they are correct either way, and undoing them would oscillate).
  if (!slow) return;
  if (s.peer_dead[peer]) return;  // crash repair owns dead peers
  // (1) Slow-root re-ownership: for each block the lagging peer currently
  // roots, report to the block's coordinator if we already hold it in full
  // (ranks completing later report from on_block_complete).
  for (std::size_t b = 0; b < p_.roots.size(); ++b) {
    if (s.block_root[b] != peer) continue;
    if (s.block_abandoned[b] || s.slow_reported[b]) continue;
    if (s.block_received[b] == map_.chunks_per_block())
      report_slow_root(r, b);
  }
  // (2) Fetch detour: re-aim active un-ACKed fetches at the lagging peer
  // toward a non-lagging survivor (ACKed fetches finish where they are —
  // the RDMA Reads are already in flight).
  for (std::size_t b = 0; b < p_.roots.size(); ++b) {
    BlockFetch& f = s.fetch[b];
    if (!f.active || f.acked || f.target != peer) continue;
    if (s.block_received[b] == map_.chunks_per_block() ||
        s.block_abandoned[b])
      continue;
    bool det = false;
    const std::size_t next = fetch_target_of(r, r, &det);
    if (next == r || next == peer || s.peer_lagging[next]) continue;
    ++fetch_detours_;
    telem().recorder.record(comm_.cluster().engine().now(),
                            static_cast<std::int32_t>(r),
                            telemetry::EventCat::kAdapt, "fetch_detour", b,
                            next);
    start_fetch(r, b, next);
  }
}

void McastCollective::report_slow_root(std::size_t r, std::size_t block) {
  RankState& s = st_[r];
  if (s.block_received[block] != map_.chunks_per_block()) return;
  s.slow_reported[block] = 1;
  const std::size_t c = coordinator_of(r, block);
  telem().recorder.record(comm_.cluster().engine().now(),
                          static_cast<std::int32_t>(r),
                          telemetry::EventCat::kAdapt, "slow_root_report",
                          block, c);
  if (c == r) {
    on_slow_root_report(r, block, r, true);
    return;
  }
  MCCL_CHECK(block < (std::size_t{1} << 15));
  comm_.ep(r).ctrl_send(c, {CtrlType::kSlowRoot, id(),
                            static_cast<std::uint16_t>((block << 1) | 1u)});
}

void McastCollective::on_slow_root_report(std::size_t r, std::size_t block,
                                          std::size_t src, bool holds_full) {
  RankState& s = st_[r];
  if (failed_ || rank_crashed(r)) return;
  if (!holds_full) return;  // only a full holder can take ownership
  if (s.slow_decision[block] != 0 || s.block_decision[block] != 0 ||
      s.block_abandoned[block])
    return;  // already decided (or the dead census owns this block)
  if (s.peer_dead[s.block_root[block]] || s.peer_dead[src]) return;
  if (src == s.block_root[block]) return;
  // Ownership conservation: a slow re-root hands the block's slow-path
  // responsibility to a rank that really holds all of it. Remote claims are
  // taken on faith (the reporter checked its own bitmaps before sending);
  // a self-delivered claim is checked against this rank's bookkeeping.
  MCCL_VALIDATE_THAT(
      src != r || s.block_received[block] == map_.chunks_per_block(),
      "adapt.ownership_conservation",
      "rank %zu: slow re-root of block %zu to itself while holding only "
      "%zu/%zu chunks",
      r, block, s.block_received[block], map_.chunks_per_block());
  s.slow_decision[block] = 1;
  ++adapt_reroots_;
  const Time now = comm_.cluster().engine().now();
  telemetry::Telemetry& te = telem();
  te.recorder.record(now, static_cast<std::int32_t>(r),
                     telemetry::EventCat::kAdapt, "slow_reroot", block, src);
  if (te.tracer.enabled())
    te.tracer.instant(comm_.ep(r).trace_track(), "slow_reroot", now, "coll");
  // The ordinary kReRoot broadcast moves the fetch-chain terminus; the slow
  // root stays alive and keeps multicasting (only slow-path ownership
  // moves). The displaced root gets the message too, so every future death
  // census agrees on who owns the block.
  MCCL_CHECK(block < 256 && src < 256);
  for (std::size_t x = 0; x < comm_.size(); ++x) {
    if (x == r || s.peer_dead[x]) continue;
    comm_.ep(r).ctrl_send(
        x, {CtrlType::kReRoot, id(),
            static_cast<std::uint16_t>((block << 8) | src)});
  }
  apply_reroot(r, block, src, /*eager=*/false);
}

// --------------------------------------------------------------------------
// Watchdog: the op-level hard deadline. The slow path retries forever at
// the transport level (RC go-back-N), so a partitioned fabric would spin
// the simulator indefinitely; the watchdog converts that into a structured
// failure.
// --------------------------------------------------------------------------

void McastCollective::arm_watchdog() {
  Time deadline = comm_.config().watchdog_timeout;
  if (deadline == 0) {
    Time worst = 0;
    for (std::size_t r = 0; r < comm_.size(); ++r)
      worst = std::max(worst, cutoff_deadline(r));
    deadline = static_cast<Time>(
        static_cast<double>(worst) * comm_.config().watchdog_multiplier);
  }
  comm_.cluster().engine().schedule(deadline, [this] { on_watchdog(); });
}

void McastCollective::on_watchdog() {
  if (done() || failed_) return;
  watchdog_fired_ = true;
  const Time now = comm_.cluster().engine().now();
  // Record the verdict per stuck rank, then dump the flight recorder: the
  // merged tail of recent packet/QP/collective/fault events around each
  // ring is the post-mortem evidence, replacing the old raw-state print.
  telemetry::Telemetry& te = telem();
  std::size_t incomplete = 0;
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    const RankState& s = st_[r];
    if (s.op_done) continue;
    ++incomplete;
    te.recorder.record(now, static_cast<std::int32_t>(r),
                       telemetry::EventCat::kWatchdog, "rank_incomplete",
                       s.received, s.expected);
    if (te.tracer.enabled())
      te.tracer.instant(comm_.ep(r).trace_track(), "watchdog", now, "coll");
  }
  std::fprintf(stderr, "[%s #%u] watchdog fired at t=%.3fus, %zu/%zu ranks "
               "incomplete:\n", name_.c_str(), static_cast<unsigned>(id()),
               static_cast<double>(now) / 1e6, incomplete, comm_.size());
  te.recorder.dump(stderr);
  fail_op("watchdog: " + std::to_string(incomplete) + "/" +
          std::to_string(comm_.size()) +
          " ranks incomplete past the op deadline (fabric partitioned or "
          "recovery disabled)");
}

// --------------------------------------------------------------------------
// Control plane and completion
// --------------------------------------------------------------------------

void McastCollective::on_ctrl(std::size_t r, const CtrlMsg& msg,
                              std::size_t src, const rdma::Cqe& cqe) {
  (void)cqe;
  if (failed_ || rank_crashed(r)) return;
  RankState& s = st_[r];
  switch (msg.type) {
    case CtrlType::kBarrier: {
      MCCL_CHECK(msg.arg < s.barrier_seen.size());
      ++s.barrier_seen[msg.arg];
      MCCL_VALIDATE_THAT(s.barrier_seen[msg.arg] <= 2,
                         "coll.barrier_credit_balance",
                         "rank %zu: round %u has %zu outstanding tokens "
                         "(max 2: one real + one death credit)",
                         r, static_cast<unsigned>(msg.arg),
                         s.barrier_seen[msg.arg]);
      barrier_advance(r);
      break;
    }
    case CtrlType::kChainToken:
      activate_send(r);
      break;
    case CtrlType::kFinal:
      // After ring repair the Final may come from any survivor whose
      // left-alive neighbor we are, not just the static right neighbor.
      s.finals_from[src] = 1;
      check_op_done(r);
      break;
    case CtrlType::kFetchReq: {
      // Any rank may ask (failover walks past the immediate neighbor);
      // retries make duplicates normal. A request from a rank we have
      // confirmed dead is a posthumous straggler — ignore it.
      if (s.peer_dead[src]) break;
      const std::size_t block = msg.arg;
      if (s.block_received[block] == map_.chunks_per_block()) {
        comm_.ep(r).ctrl_send(src, {CtrlType::kFetchAck, id(), msg.arg});
      } else {
        auto& waiters = s.fetch_waiters[block];
        if (std::find(waiters.begin(), waiters.end(), src) == waiters.end())
          waiters.push_back(src);
      }
      break;
    }
    case CtrlType::kFetchAck:
      on_fetch_ack(r, msg.arg, src);
      break;
    case CtrlType::kBlockReport:
      on_block_report(r, msg.arg >> 1, src, (msg.arg & 1u) != 0);
      break;
    case CtrlType::kSlowRoot:
      on_slow_root_report(r, msg.arg >> 1, src, (msg.arg & 1u) != 0);
      break;
    case CtrlType::kReRoot:
      // Eager only when the displaced root is dead from this rank's view
      // (crash census); a slow re-root's old root is alive and keeps
      // multicasting, so the receiver stays lazy.
      apply_reroot(r, msg.arg >> 8, msg.arg & 0xffu,
                   st_[r].peer_dead[st_[r].block_root[msg.arg >> 8]] != 0);
      break;
    case CtrlType::kBlockDead:
      apply_block_dead(r, msg.arg);
      break;
    default:
      MCCL_CHECK_MSG(false, "unexpected control message");
  }
}

void McastCollective::check_op_done(std::size_t r) {
  RankState& s = st_[r];
  if (failed_ || rank_crashed(r) || s.op_done || !s.data_complete) return;
  // Wait for the Final of whoever currently counts us as *their* left-alive
  // neighbor: our right-alive neighbor. A sole survivor waits on nobody.
  const std::size_t ra = right_alive_of(r);
  if (ra != r && !s.finals_from[ra]) return;
  if (is_root(r) && !s.send_done) return;
  s.op_done = true;
  const Time now = comm_.cluster().engine().now();
  const Time data_ready = std::max(s.t_data, s.t_send_done);
  Phases& ph = phases_[r];
  ph.barrier = s.t_barrier - s.t_start;
  ph.reliability = s.t_recovery;
  ph.transfer = (data_ready - s.t_barrier) - s.t_recovery;
  ph.handshake = now - data_ready;
  // Phase spans on the rank's protocol row, cut from the same timestamps as
  // the Fig 10 phase timers: "multicast" covers transfer + reliability with
  // the recovery window nested inside it, so span sums reproduce the timer
  // totals exactly (tests/test_telemetry.cpp asserts equality).
  telemetry::Tracer& tracer = telem().tracer;
  if (tracer.enabled()) {
    const telemetry::TrackId track = comm_.ep(r).trace_track();
    tracer.complete(track, "barrier", s.t_start, s.t_barrier, "coll");
    tracer.complete(track, "multicast", s.t_barrier, data_ready, "coll");
    if (s.recovering)
      tracer.complete(track, "recovery", s.t_recovery_begin,
                      s.t_recovery_begin + s.t_recovery, "coll");
    if (s.repairing)
      tracer.complete(track, "repair", s.t_repair_begin, now, "coll");
    tracer.complete(track, "handshake", data_ready, now, "coll");
  }
  rank_done(r);
}

bool McastCollective::validate_rank(std::size_t r) const {
  if (!debug::kValidate) return true;
  const RankState& s = st_[r];
  bool ok = true;
  std::size_t marked = 0;
  for (const Bitmap& bm : s.bitmaps) marked += bm.popcount();
  if (marked != s.received) {
    debug::report("coll.chunk_conservation",
                  "rank %zu: bitmaps mark %zu chunks but received counter "
                  "is %zu",
                  r, marked, s.received);
    ok = false;
  }
  if (s.received > s.expected) {
    debug::report("coll.chunk_conservation",
                  "rank %zu: received %zu chunks, expected at most %zu", r,
                  s.received, s.expected);
    ok = false;
  }
  for (std::size_t b = 0; b < s.block_received.size(); ++b) {
    if (s.block_received[b] > map_.chunks_per_block()) {
      debug::report("coll.chunk_conservation",
                    "rank %zu: block %zu holds %zu chunks but blocks have "
                    "only %zu",
                    r, b, s.block_received[b], map_.chunks_per_block());
      ok = false;
    }
  }
  for (std::size_t k = 0; k < s.barrier_seen.size(); ++k) {
    if (s.barrier_seen[k] > 2) {
      debug::report("coll.barrier_credit_balance",
                    "rank %zu: round %zu has %zu outstanding tokens "
                    "(max 2: one real + one death credit)",
                    r, k, s.barrier_seen[k]);
      ok = false;
    }
  }
  return ok;
}

void McastCollective::debug_dump() const {
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    const RankState& s = st_[r];
    std::size_t dead_peers = 0;
    for (const char d : s.peer_dead) dead_peers += d != 0;
    const std::size_t ra = right_alive_of(r);
    std::fprintf(stderr,
                 "rank %zu: barrier(round=%zu done=%d) recv=%zu/%zu "
                 "copies=%zu local=%d data=%d send(active=%d done=%d "
                 "sgs=%zu) recovering=%d repairing=%d dead_peers=%zu "
                 "fetches=%zu final(sent=%d from_right_alive=%d) done=%d\n",
                 r, s.barrier_round, s.barrier_done, s.received, s.expected,
                 s.pending_copies, s.local_copy_done, s.data_complete,
                 s.send_active, s.send_done, s.subgroups_done, s.recovering,
                 s.repairing, dead_peers, s.pending_fetches, s.final_sent,
                 ra == r ? 1 : static_cast<int>(s.finals_from[ra]),
                 s.op_done);
    std::fprintf(stderr, "  blocks:");
    for (std::size_t b = 0; b < p_.roots.size(); ++b) {
      const BlockFetch& f = s.fetch[b];
      std::fprintf(stderr, " %zu/%zu", s.block_received[b],
                   map_.chunks_per_block());
      if (s.block_abandoned[b]) std::fprintf(stderr, "(dead)");
      if (!s.fetch_waiters[b].empty())
        std::fprintf(stderr, "(w=%zu)", s.fetch_waiters[b].size());
      if (f.active)
        std::fprintf(stderr, "[->%zu a=%zu%s]", f.target, f.attempts,
                     f.acked ? " acked" : "");
    }
    std::fprintf(stderr, "\n");
  }
}

bool McastCollective::verify() const {
  if (!comm_.data_mode()) return true;
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    if (rank_crashed(r)) continue;  // dead ranks owe nothing
    const RankState& s = st_[r];
    const auto& mem = comm_.ep(r).nic().memory();
    for (std::size_t b = 0; b < p_.roots.size(); ++b) {
      if (s.block_abandoned[b]) continue;  // degraded completion: kPartial
      if (!check_pattern(mem, s.recvbuf + b * p_.block_bytes, p_.block_bytes,
                         id(), p_.roots[b]))
        return false;
    }
  }
  return true;
}

}  // namespace mccl::coll
