#include "src/coll/mcast_coll.hpp"

#include <algorithm>

#include "src/coll/pattern.hpp"

namespace mccl::coll {

namespace {
std::size_t ceil_log2(std::size_t n) {
  std::size_t k = 0, v = 1;
  while (v < n) {
    v *= 2;
    ++k;
  }
  return k;
}
}  // namespace

McastCollective::McastCollective(Communicator& comm, std::string name,
                                 Params params)
    : OpBase(comm, std::move(name)),
      p_(std::move(params)),
      map_(p_.block_bytes, comm.config().chunk_bytes,
           comm.config().subgroups, p_.roots.size()),
      schedule_(p_.roots.size(), std::min(comm.config().chains,
                                          p_.roots.size())),
      tag_(comm.next_mcast_tag()),
      rkey_(comm.cluster().next_shared_rkey()),
      barrier_rounds_(ceil_log2(comm.size())) {
  const std::size_t P = comm_.size();
  MCCL_CHECK(P >= 2);
  MCCL_CHECK(!p_.roots.empty());
  if (comm_.config().transport == Transport::kUd) {
    MCCL_CHECK_MSG(comm_.config().chunk_bytes <=
                       comm_.cluster().config().nic.mtu,
                   "UD chunks must fit in the MTU");
  }
  MCCL_CHECK_MSG(map_.total_chunks() < (1u << kChunkBits),
                 "send buffer too large for the PSN immediate bits");

  // Block-local chunk index -> subgroup partition (identical for every
  // block; precomputed once).
  sg_indices_.resize(map_.subgroups);
  for (std::size_t i = 0; i < map_.chunks_per_block(); ++i)
    sg_indices_[map_.subgroup_of(map_.id_of(0, i))].push_back(i);

  st_.resize(P);
  const bool fill = comm_.data_mode();
  for (std::size_t r = 0; r < P; ++r) {
    RankState& s = st_[r];
    Endpoint& ep = comm_.ep(r);
    auto& mem = ep.nic().memory();
    // Symmetric allocation: identical offsets on every rank let the fetch
    // layer and UC multicast writes target one agreed remote address.
    s.sendbuf = mem.alloc(p_.block_bytes);
    s.recvbuf = mem.alloc(p_.block_bytes * map_.blocks);
    MCCL_CHECK_MSG(s.recvbuf == st_[0].recvbuf,
                   "asymmetric receive buffer allocation");
    ep.nic().mrs().register_with_rkey(s.recvbuf,
                                      p_.block_bytes * map_.blocks, rkey_);
    for (std::size_t b = 0; b < p_.roots.size(); ++b)
      if (p_.roots[b] == r) s.root_index = static_cast<int>(b);
    if (fill) fill_pattern(mem, s.sendbuf, p_.block_bytes, id(), r);

    s.barrier_seen.assign(barrier_rounds_ == 0 ? 1 : barrier_rounds_, 0);
    s.block_received.assign(p_.roots.size(), 0);
    s.fetch_waiters.assign(p_.roots.size(), {});
    s.fetch.assign(p_.roots.size(), BlockFetch{});
    s.bitmaps.reserve(map_.subgroups);
    for (std::size_t sg = 0; sg < map_.subgroups; ++sg)
      s.bitmaps.emplace_back(map_.total_chunks());
    const std::size_t foreign_blocks =
        p_.roots.size() - (s.root_index >= 0 ? 1 : 0);
    s.expected = foreign_blocks * map_.chunks_per_block();
    s.local_copy_done = s.root_index < 0;  // roots copy their block locally

    // Handlers.
    ep.register_mcast_op(tag_, [this, r](std::uint32_t chunk, std::size_t sg,
                                         const rdma::Cqe& cqe) {
      on_chunk(r, chunk, sg, cqe);
    });
    ep.register_ctrl(id(), [this, r](const CtrlMsg& m, std::size_t src,
                                     const rdma::Cqe& cqe) {
      on_ctrl(r, m, src, cqe);
    });
    ep.register_read_handler(id(), [this, r](const rdma::Cqe& cqe) {
      on_read_done(r, cqe);
    });
  }
}

McastCollective::~McastCollective() {
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    Endpoint& ep = comm_.ep(r);
    ep.unregister_mcast_op(tag_);
    ep.unregister_ctrl(id());
    ep.unregister_read_handler(id());
  }
}

void McastCollective::start() {
  mark_started();
  arm_watchdog();
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    st_[r].t_start = start_time_;
    barrier_kick(r);
    if (is_root(r)) {
      // Roots place their own block into the receive region through the
      // local DMA engine (also the fetch-layer source of last resort).
      RankState& s = st_[r];
      Endpoint& ep = comm_.ep(r);
      const std::uint64_t dst =
          s.recvbuf + static_cast<std::size_t>(s.root_index) * p_.block_bytes;
      ep.nic().post_local_copy(s.sendbuf, dst, p_.block_bytes, [this, r] {
        if (failed_) return;
        RankState& s2 = st_[r];
        s2.local_copy_done = true;
        const auto own = static_cast<std::size_t>(s2.root_index);
        s2.block_received[own] = map_.chunks_per_block();
        on_block_complete(r, own);
        check_data_complete(r);
      });
    }
  }
}

// --------------------------------------------------------------------------
// Barrier (dissemination): round k sends to (r + 2^k) mod P and waits for a
// token from (r - 2^k) mod P. Completes in ceil(log2 P) rounds for any P.
// --------------------------------------------------------------------------

void McastCollective::barrier_kick(std::size_t r) {
  if (barrier_rounds_ == 0) {
    on_barrier_done(r);
    return;
  }
  barrier_send_round(r);
}

void McastCollective::barrier_send_round(std::size_t r) {
  RankState& s = st_[r];
  const std::size_t P = comm_.size();
  const std::size_t dist = std::size_t{1} << s.barrier_round;
  comm_.ep(r).ctrl_send((r + dist) % P,
                        {CtrlType::kBarrier, id(),
                         static_cast<std::uint16_t>(s.barrier_round)});
  barrier_advance(r);
}

void McastCollective::barrier_advance(std::size_t r) {
  RankState& s = st_[r];
  while (s.barrier_round < barrier_rounds_ &&
         s.barrier_seen[s.barrier_round] > 0) {
    --s.barrier_seen[s.barrier_round];
    ++s.barrier_round;
    if (s.barrier_round < barrier_rounds_) {
      barrier_send_round(r);
      return;  // continuation driven by the next token
    }
  }
  if (s.barrier_round >= barrier_rounds_ && !s.barrier_done)
    on_barrier_done(r);
}

void McastCollective::on_barrier_done(std::size_t r) {
  RankState& s = st_[r];
  s.barrier_done = true;
  s.t_barrier = comm_.cluster().engine().now();
  arm_cutoff(r);
  if (is_root(r) &&
      schedule_.is_chain_head(static_cast<std::size_t>(s.root_index)))
    activate_send(r);
  // Degenerate case: nothing to receive (single-root broadcast at the root).
  check_data_complete(r);
}

// --------------------------------------------------------------------------
// Send path
// --------------------------------------------------------------------------

void McastCollective::activate_send(std::size_t r) {
  RankState& s = st_[r];
  MCCL_CHECK(is_root(r) && !s.send_active);
  s.send_active = true;
  for (std::size_t sg = 0; sg < map_.subgroups; ++sg) send_batch(r, sg, 0);
}

void McastCollective::send_batch(std::size_t r, std::size_t sg,
                                 std::size_t pos) {
  Endpoint& ep = comm_.ep(r);
  const auto& indices = sg_indices_[sg];
  if (indices.empty()) {
    on_subgroup_sent(r, sg);
    return;
  }
  const std::size_t batch =
      std::min(comm_.config().send_batch, indices.size() - pos);
  const exec::Cost cost =
      exec::Cost{ep.send_costs().send_post.instr * batch,
                 ep.send_costs().send_post.stall * batch} +
      ep.send_costs().doorbell;
  ep.send_worker(sg).post(cost, [this, r, sg, pos, batch] {
    Endpoint& ep = comm_.ep(r);
    RankState& s = st_[r];
    const auto& indices = sg_indices_[sg];
    Endpoint::Subgroup& g = ep.subgroup(sg);
    const std::size_t block = static_cast<std::size_t>(s.root_index);
    for (std::size_t k = 0; k < batch; ++k) {
      const std::size_t idx = indices[pos + k];
      const std::uint32_t id32 = map_.id_of(block, idx);
      const bool last = pos + k + 1 == indices.size();
      rdma::SendFlags flags;
      flags.imm = encode_chunk_imm(tag_, id32);
      flags.has_imm = true;
      flags.signaled = last;  // doorbell batching: only the tail reports
      flags.wr_id = flags.imm;
      const std::uint64_t laddr = s.sendbuf + map_.send_offset_of(id32);
      const std::uint32_t len = map_.len_of(id32);
      if (comm_.config().transport == Transport::kUd) {
        g.ud->post_send(rdma::UdDest::multicast(comm_.subgroup_group(sg)),
                        laddr, len, flags);
      } else {
        const std::uint64_t raddr = s.recvbuf + map_.offset_of(id32);
        g.uc->post_write(laddr, len, raddr, rkey_, flags);
      }
    }
    if (pos + batch < indices.size()) send_batch(r, sg, pos + batch);
  });
}

void McastCollective::on_subgroup_sent(std::size_t r, std::size_t sg) {
  (void)sg;
  RankState& s = st_[r];
  if (++s.subgroups_done < map_.subgroups) return;
  s.send_done = true;
  s.t_send_done = comm_.cluster().engine().now();
  const int next = schedule_.successor(static_cast<std::size_t>(s.root_index));
  if (next >= 0)
    comm_.ep(r).ctrl_send(p_.roots[static_cast<std::size_t>(next)],
                          {CtrlType::kChainToken, id(), 0});
  check_op_done(r);
}

// --------------------------------------------------------------------------
// Receive path
// --------------------------------------------------------------------------

void McastCollective::on_chunk(std::size_t r, std::uint32_t chunk,
                               std::size_t sg, const rdma::Cqe& cqe) {
  if (failed_) return;
  if (cqe.opcode == rdma::CqeOpcode::kSend) {
    on_subgroup_sent(r, sg);
    return;
  }
  RankState& s = st_[r];
  MCCL_CHECK_MSG(static_cast<int>(map_.block_of(chunk)) != s.root_index,
                 "received a chunk of our own block");
  if (!set_chunk(r, chunk)) return;  // duplicate (fetch/late-arrival race)

  if (comm_.config().transport == Transport::kUd) {
    // Staging -> user buffer copy through the NIC DMA engine; the staging
    // slot is reposted only once its bytes have drained.
    Endpoint& ep = comm_.ep(r);
    const std::uint64_t slot = cqe.wr_id;
    const std::uint64_t dst = s.recvbuf + map_.offset_of(chunk);
    ++s.pending_copies;
    ep.nic().post_local_copy(slot, dst, map_.len_of(chunk),
                             [this, r, sg, slot] {
                               RankState& s2 = st_[r];
                               --s2.pending_copies;
                               comm_.ep(r).repost_staging(sg, slot);
                               check_data_complete(r);
                             });
  }
  check_data_complete(r);
}

bool McastCollective::set_chunk(std::size_t r, std::uint32_t id) {
  RankState& s = st_[r];
  Bitmap& bm = s.bitmaps[map_.subgroup_of(id)];
  if (!bm.set(id)) return false;
  ++s.received;
  const std::size_t block = map_.block_of(id);
  if (++s.block_received[block] == map_.chunks_per_block())
    on_block_complete(r, block);
  return true;
}

void McastCollective::check_data_complete(std::size_t r) {
  RankState& s = st_[r];
  if (failed_ || s.data_complete || !s.barrier_done) return;
  if (s.received < s.expected || s.pending_copies > 0 || !s.local_copy_done)
    return;
  s.data_complete = true;
  s.t_data = comm_.cluster().engine().now();
  if (s.recovering) s.t_recovery = s.t_data - s.t_recovery_begin;
  ++s.timer_gen;  // cancel the cutoff timer
  // Final handshake: tell the left neighbor we are complete.
  s.final_sent = true;
  comm_.ep(r).ctrl_send(left_of(r), {CtrlType::kFinal, id(), 0});
  check_op_done(r);
}

// --------------------------------------------------------------------------
// Reliability slow path
// --------------------------------------------------------------------------

Time McastCollective::cutoff_deadline(std::size_t r) const {
  const std::uint64_t expected_bytes =
      static_cast<std::uint64_t>(st_[r].expected) * map_.chunk_bytes;
  // N/B_link plus per-schedule-step slack (chain tokens serialize the
  // roots) plus the (adaptively tightened) alpha for synchronization noise.
  return serialization_time(expected_bytes, comm_.ep(r).link_gbps()) +
         static_cast<Time>(schedule_.chain_len) * 10 * kMicrosecond +
         comm_.effective_cutoff_alpha();
}

void McastCollective::arm_cutoff(std::size_t r) {
  RankState& s = st_[r];
  const std::uint64_t gen = s.timer_gen;
  comm_.cluster().engine().schedule(cutoff_deadline(r),
                                    [this, r, gen] { on_cutoff(r, gen); });
}

void McastCollective::on_cutoff(std::size_t r, std::uint64_t gen) {
  RankState& s = st_[r];
  if (failed_ || gen != s.timer_gen || s.data_complete) return;
  // Without the reliability layer there is no slow path; the watchdog is
  // the only thing standing between a lossy fabric and a hang.
  if (!comm_.config().reliability) return;
  if (s.recovering) return;
  s.recovering = true;
  s.t_recovery_begin = comm_.cluster().engine().now();
  telemetry::Telemetry& te = telem();
  te.recorder.record(s.t_recovery_begin, static_cast<std::int32_t>(r),
                     telemetry::EventCat::kColl, "cutoff_recovery", id(),
                     s.expected - s.received);
  if (te.tracer.enabled())
    te.tracer.instant(comm_.ep(r).trace_track(), "cutoff",
                      s.t_recovery_begin, "coll");
  // One fetch request per incomplete block: the target acks each block as
  // soon as it holds it in full. The first target is the left neighbor.
  for (std::size_t b = 0; b < p_.roots.size(); ++b) {
    if (static_cast<int>(b) == s.root_index) continue;
    if (s.block_received[b] < map_.chunks_per_block())
      start_fetch(r, b, left_of(r));
  }
}

void McastCollective::on_block_complete(std::size_t r, std::size_t block) {
  RankState& s = st_[r];
  // Serve every rank whose fetch request was deferred until we held the
  // block (pre-hardening this could only be the right neighbor).
  for (const std::size_t waiter : s.fetch_waiters[block])
    comm_.ep(r).ctrl_send(waiter, {CtrlType::kFetchAck, id(),
                                   static_cast<std::uint16_t>(block)});
  s.fetch_waiters[block].clear();
  // Cancel our own outstanding fetch of this block (multicast raced the
  // slow path); a late ACK is ignored via the `acked` latch.
  BlockFetch& f = s.fetch[block];
  if (f.active && !f.acked) {
    f.active = false;
    ++f.gen;
  }
}

void McastCollective::start_fetch(std::size_t r, std::size_t block,
                                  std::size_t target) {
  RankState& s = st_[r];
  MCCL_CHECK(target != r);
  BlockFetch& f = s.fetch[block];
  f.active = true;
  f.acked = false;
  f.target = target;
  f.attempts = 1;
  ++f.gen;
  telem().recorder.record(comm_.cluster().engine().now(),
                          static_cast<std::int32_t>(r),
                          telemetry::EventCat::kColl, "fetch_start", block,
                          target);
  comm_.ep(r).ctrl_send(target, {CtrlType::kFetchReq, id(),
                                 static_cast<std::uint16_t>(block)});
  arm_fetch_retry(r, block);
}

void McastCollective::arm_fetch_retry(std::size_t r, std::size_t block) {
  const BlockFetch& f = st_[r].fetch[block];
  if (comm_.config().fetch_retry_timeout == 0) return;  // retries disabled
  // Exponential backoff per attempt against the current target.
  const Time delay = comm_.config().fetch_retry_timeout
                     << (f.attempts > 0 ? f.attempts - 1 : 0);
  const std::uint64_t gen = f.gen;
  comm_.cluster().engine().schedule(
      delay, [this, r, block, gen] { on_fetch_retry(r, block, gen); });
}

void McastCollective::on_fetch_retry(std::size_t r, std::size_t block,
                                     std::uint64_t gen) {
  RankState& s = st_[r];
  BlockFetch& f = s.fetch[block];
  if (failed_ || !f.active || f.acked || gen != f.gen) return;
  if (s.block_received[block] == map_.chunks_per_block()) return;
  if (f.attempts < comm_.config().fetch_retry_cap) {
    // Same target, another request: the original (or its ACK) may have
    // been lost on a degraded link.
    ++f.attempts;
    ++fetch_retries_;
    telemetry::Telemetry& te = telem();
    te.recorder.record(comm_.cluster().engine().now(),
                       static_cast<std::int32_t>(r),
                       telemetry::EventCat::kColl, "fetch_retry", block,
                       f.target);
    if (te.tracer.enabled())
      te.tracer.instant(comm_.ep(r).trace_track(), "fetch_retry",
                        comm_.cluster().engine().now(), "coll");
    comm_.ep(r).ctrl_send(f.target, {CtrlType::kFetchReq, id(),
                                     static_cast<std::uint16_t>(block)});
    arm_fetch_retry(r, block);
    return;
  }
  // Retries exhausted: the target is unreachable or stuck. Fail over one
  // step further left. The chain still terminates at the block root (which
  // completes its block through the local copy); if even the root is
  // unreachable the watchdog ends the op.
  std::size_t next = left_of(f.target);
  if (next == r) next = left_of(next);  // never fetch from ourselves
  if (next == f.target) return;         // two-rank comm: nowhere to go
  ++fetch_failovers_;
  f.target = next;
  f.attempts = 1;
  ++f.gen;
  telemetry::Telemetry& te = telem();
  te.recorder.record(comm_.cluster().engine().now(),
                     static_cast<std::int32_t>(r),
                     telemetry::EventCat::kColl, "fetch_failover", block,
                     next);
  if (te.tracer.enabled())
    te.tracer.instant(comm_.ep(r).trace_track(), "fetch_failover",
                      comm_.cluster().engine().now(), "coll");
  comm_.ep(r).ctrl_send(f.target, {CtrlType::kFetchReq, id(),
                                   static_cast<std::uint16_t>(block)});
  arm_fetch_retry(r, block);
}

void McastCollective::on_fetch_ack(std::size_t r, std::size_t block,
                                   std::size_t src) {
  RankState& s = st_[r];
  if (failed_ || s.data_complete) return;
  BlockFetch& f = s.fetch[block];
  if (f.acked) return;  // duplicate ACK (retry raced the original)
  f.acked = true;
  ++f.gen;  // cancel pending retry timers
  telem().recorder.record(comm_.cluster().engine().now(),
                          static_cast<std::int32_t>(r),
                          telemetry::EventCat::kColl, "fetch_ack", block,
                          src);
  // Collect this block's chunks still missing at ACK time (some may have
  // raced in through the multicast path).
  std::vector<std::uint32_t> missing;
  const std::uint32_t begin = map_.id_of(block, 0);
  const std::uint32_t end =
      begin + static_cast<std::uint32_t>(map_.chunks_per_block());
  for (std::uint32_t id32 = begin; id32 < end; ++id32) {
    if (!s.bitmaps[map_.subgroup_of(id32)].test(id32))
      missing.push_back(id32);
  }
  if (missing.empty()) {
    if (s.pending_fetches == 0) check_data_complete(r);
    return;
  }
  fetched_chunks_ += missing.size();
  Endpoint& ep = comm_.ep(r);
  s.pending_fetches += missing.size();
  for (const std::uint32_t id32 : missing) {
    ep.recv_worker(0).post(ep.costs().fetch_post, [this, r, src, id32] {
      RankState& s2 = st_[r];
      Endpoint& ep2 = comm_.ep(r);
      rdma::SendFlags flags;
      flags.signaled = true;
      flags.wr_id = (static_cast<std::uint64_t>(id()) << 32) | id32;
      // Symmetric layout: the chunk lives at the same offset in the
      // ACKing rank's receive buffer (the left neighbor normally, a
      // further-left rank after failover).
      ep2.data_qp(src).post_read(s2.recvbuf + map_.offset_of(id32),
                                 map_.len_of(id32),
                                 s2.recvbuf + map_.offset_of(id32), rkey_,
                                 flags);
    });
  }
}

void McastCollective::on_read_done(std::size_t r, const rdma::Cqe& cqe) {
  RankState& s = st_[r];
  if (failed_) return;
  MCCL_CHECK(cqe.opcode == rdma::CqeOpcode::kRead);
  const std::uint32_t id32 = static_cast<std::uint32_t>(cqe.wr_id);
  set_chunk(r, id32);  // may be a duplicate if multicast raced the fetch
  MCCL_CHECK(s.pending_fetches > 0);
  if (--s.pending_fetches == 0) check_data_complete(r);
}

// --------------------------------------------------------------------------
// Watchdog: the op-level hard deadline. The slow path retries forever at
// the transport level (RC go-back-N), so a partitioned fabric would spin
// the simulator indefinitely; the watchdog converts that into a structured
// failure.
// --------------------------------------------------------------------------

void McastCollective::arm_watchdog() {
  Time deadline = comm_.config().watchdog_timeout;
  if (deadline == 0) {
    Time worst = 0;
    for (std::size_t r = 0; r < comm_.size(); ++r)
      worst = std::max(worst, cutoff_deadline(r));
    deadline = static_cast<Time>(
        static_cast<double>(worst) * comm_.config().watchdog_multiplier);
  }
  comm_.cluster().engine().schedule(deadline, [this] { on_watchdog(); });
}

void McastCollective::on_watchdog() {
  if (done() || failed_) return;
  watchdog_fired_ = true;
  const Time now = comm_.cluster().engine().now();
  // Record the verdict per stuck rank, then dump the flight recorder: the
  // merged tail of recent packet/QP/collective/fault events around each
  // ring is the post-mortem evidence, replacing the old raw-state print.
  telemetry::Telemetry& te = telem();
  std::size_t incomplete = 0;
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    const RankState& s = st_[r];
    if (s.op_done) continue;
    ++incomplete;
    te.recorder.record(now, static_cast<std::int32_t>(r),
                       telemetry::EventCat::kWatchdog, "rank_incomplete",
                       s.received, s.expected);
    if (te.tracer.enabled())
      te.tracer.instant(comm_.ep(r).trace_track(), "watchdog", now, "coll");
  }
  std::fprintf(stderr, "[%s #%u] watchdog fired at t=%.3fus, %zu/%zu ranks "
               "incomplete:\n", name_.c_str(), static_cast<unsigned>(id()),
               static_cast<double>(now) / 1e6, incomplete, comm_.size());
  te.recorder.dump(stderr);
  fail_op("watchdog: " + std::to_string(incomplete) + "/" +
          std::to_string(comm_.size()) +
          " ranks incomplete past the op deadline (fabric partitioned or "
          "recovery disabled)");
}

// --------------------------------------------------------------------------
// Control plane and completion
// --------------------------------------------------------------------------

void McastCollective::on_ctrl(std::size_t r, const CtrlMsg& msg,
                              std::size_t src, const rdma::Cqe& cqe) {
  (void)cqe;
  if (failed_) return;
  RankState& s = st_[r];
  switch (msg.type) {
    case CtrlType::kBarrier: {
      MCCL_CHECK(msg.arg < s.barrier_seen.size());
      ++s.barrier_seen[msg.arg];
      barrier_advance(r);
      break;
    }
    case CtrlType::kChainToken:
      activate_send(r);
      break;
    case CtrlType::kFinal:
      MCCL_CHECK(src == right_of(r));
      s.final_from_right = true;
      check_op_done(r);
      break;
    case CtrlType::kFetchReq: {
      // Any rank may ask (failover walks past the immediate neighbor);
      // retries make duplicates normal.
      const std::size_t block = msg.arg;
      if (s.block_received[block] == map_.chunks_per_block()) {
        comm_.ep(r).ctrl_send(src, {CtrlType::kFetchAck, id(), msg.arg});
      } else {
        auto& waiters = s.fetch_waiters[block];
        if (std::find(waiters.begin(), waiters.end(), src) == waiters.end())
          waiters.push_back(src);
      }
      break;
    }
    case CtrlType::kFetchAck:
      on_fetch_ack(r, msg.arg, src);
      break;
    default:
      MCCL_CHECK_MSG(false, "unexpected control message");
  }
}

void McastCollective::check_op_done(std::size_t r) {
  RankState& s = st_[r];
  if (failed_ || s.op_done || !s.data_complete || !s.final_from_right) return;
  if (is_root(r) && !s.send_done) return;
  s.op_done = true;
  const Time now = comm_.cluster().engine().now();
  const Time data_ready = std::max(s.t_data, s.t_send_done);
  Phases& ph = phases_[r];
  ph.barrier = s.t_barrier - s.t_start;
  ph.reliability = s.t_recovery;
  ph.transfer = (data_ready - s.t_barrier) - s.t_recovery;
  ph.handshake = now - data_ready;
  // Phase spans on the rank's protocol row, cut from the same timestamps as
  // the Fig 10 phase timers: "multicast" covers transfer + reliability with
  // the recovery window nested inside it, so span sums reproduce the timer
  // totals exactly (tests/test_telemetry.cpp asserts equality).
  telemetry::Tracer& tracer = telem().tracer;
  if (tracer.enabled()) {
    const telemetry::TrackId track = comm_.ep(r).trace_track();
    tracer.complete(track, "barrier", s.t_start, s.t_barrier, "coll");
    tracer.complete(track, "multicast", s.t_barrier, data_ready, "coll");
    if (s.recovering)
      tracer.complete(track, "recovery", s.t_recovery_begin,
                      s.t_recovery_begin + s.t_recovery, "coll");
    tracer.complete(track, "handshake", data_ready, now, "coll");
  }
  rank_done(r);
}

void McastCollective::debug_dump() const {
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    const RankState& s = st_[r];
    std::fprintf(stderr,
                 "rank %zu: barrier(round=%zu done=%d) recv=%zu/%zu "
                 "copies=%zu local=%d data=%d send(active=%d done=%d "
                 "sgs=%zu) recovering=%d fetches=%zu final(sent=%d "
                 "from_right=%d) done=%d\n",
                 r, s.barrier_round, s.barrier_done, s.received, s.expected,
                 s.pending_copies, s.local_copy_done, s.data_complete,
                 s.send_active, s.send_done, s.subgroups_done, s.recovering,
                 s.pending_fetches, s.final_sent, s.final_from_right,
                 s.op_done);
    std::fprintf(stderr, "  blocks:");
    for (std::size_t b = 0; b < p_.roots.size(); ++b) {
      const BlockFetch& f = s.fetch[b];
      std::fprintf(stderr, " %zu/%zu", s.block_received[b],
                   map_.chunks_per_block());
      if (!s.fetch_waiters[b].empty())
        std::fprintf(stderr, "(w=%zu)", s.fetch_waiters[b].size());
      if (f.active)
        std::fprintf(stderr, "[->%zu a=%zu%s]", f.target, f.attempts,
                     f.acked ? " acked" : "");
    }
    std::fprintf(stderr, "\n");
  }
}

bool McastCollective::verify() const {
  if (!comm_.data_mode()) return true;
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    const RankState& s = st_[r];
    const auto& mem = comm_.ep(r).nic().memory();
    for (std::size_t b = 0; b < p_.roots.size(); ++b) {
      if (!check_pattern(mem, s.recvbuf + b * p_.block_bytes, p_.block_bytes,
                         id(), p_.roots[b]))
        return false;
    }
  }
  return true;
}

}  // namespace mccl::coll
