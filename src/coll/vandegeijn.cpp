// Large-message P2P broadcast and allgather variants:
//
//  - ScatterAllgatherBcast (van de Geijn): halving-tree scatter of the
//    buffer followed by a ring allgather of the pieces. The production
//    large-message broadcast: ~B/2 throughput independent of P, the
//    strongest P2P baseline against the multicast Broadcast.
//  - RecDoublingAllgather: log2(P) rounds of pairwise exchange with
//    doubling ranges (power-of-two rank counts).
#include "src/coll/vandegeijn.hpp"

#include <algorithm>

#include "src/coll/pattern.hpp"

namespace mccl::coll {

// ---------------------------------------------------------------------------
// ScatterAllgatherBcast
// ---------------------------------------------------------------------------

ScatterAllgatherBcast::ScatterAllgatherBcast(Communicator& comm,
                                             std::size_t root,
                                             std::uint64_t bytes)
    : OpBase(comm, "scatter_allgather_bcast"), root_(root), bytes_(bytes) {
  const std::size_t P = comm.size();
  MCCL_CHECK(root < P && bytes > 0);
  st_.resize(P);
  const bool fill = comm_.data_mode();
  for (std::size_t r = 0; r < P; ++r) {
    RankState& s = st_[r];
    Endpoint& ep = comm_.ep(r);
    s.sendbuf = ep.nic().memory().alloc(bytes_);
    s.recvbuf = ep.nic().memory().alloc(bytes_);
    if (fill && r == root_)
      fill_pattern(ep.nic().memory(), s.sendbuf, bytes_, id(), root_);
    ep.register_ctrl(id(), [this, r](const CtrlMsg& m, std::size_t src,
                                     const rdma::Cqe& cqe) {
      on_ctrl(r, m, src, cqe);
    });
  }

  // Scatter tree: halving recursion over shifted rank space. Each edge is
  // an op-owned QP pair; the child pre-posts the receive for its whole
  // subtree range directly into the receive buffer (zero copy).
  struct Frame {
    std::size_t lo, hi;
  };
  std::vector<Frame> stack{{0, P}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.hi - f.lo <= 1) continue;
    const std::size_t mid = f.lo + (f.hi - f.lo + 1) / 2;
    const std::size_t parent = actual(f.lo);
    const std::size_t child = actual(mid);
    auto [pq, cq] = comm_.create_qp_pair(parent, child);
    st_[parent].scatter_sends.push_back(
        ScatterEdge{pq, mid, f.hi});
    cq->post_recv({.laddr = st_[child].recvbuf + piece_off(mid),
                   .len = static_cast<std::uint32_t>(piece_off(f.hi) -
                                                     piece_off(mid))});
    st_[child].expects_scatter = true;
    stack.push_back({f.lo, mid});
    stack.push_back({mid, f.hi});
  }

  // Ring allgather of pieces in shifted space.
  for (std::size_t v = 0; v < P; ++v) {
    auto [qa, qb] = comm_.create_qp_pair(actual(v), actual((v + 1) % P));
    st_[actual(v)].qp_right = qa;
    st_[actual((v + 1) % P)].qp_left = qb;
  }
  for (std::size_t v = 0; v < P; ++v) {
    RankState& s = st_[actual(v)];
    for (std::size_t step = 0; step + 1 < P; ++step) {
      const std::size_t piece = (v + P - 1 - step) % P;
      s.qp_left->post_recv(
          {.laddr = s.recvbuf + piece_off(piece),
           .len = static_cast<std::uint32_t>(piece_len(piece))});
    }
  }
}

ScatterAllgatherBcast::~ScatterAllgatherBcast() {
  for (std::size_t r = 0; r < comm_.size(); ++r)
    comm_.ep(r).unregister_ctrl(id());
}

std::size_t ScatterAllgatherBcast::actual(std::size_t shifted) const {
  return (shifted + root_) % comm_.size();
}

std::uint64_t ScatterAllgatherBcast::piece_off(std::size_t piece) const {
  return piece * bytes_ / comm_.size();
}

std::uint64_t ScatterAllgatherBcast::piece_len(std::size_t piece) const {
  return piece_off(piece + 1) - piece_off(piece);
}

void ScatterAllgatherBcast::start() {
  mark_started();
  RankState& s = st_[root_];
  // The root works from its send buffer: local copy into the receive
  // region, then scatter.
  comm_.ep(root_).nic().post_local_copy(
      s.sendbuf, s.recvbuf, bytes_, [this] {
        st_[root_].local_copy_done = true;
        // The root's ring sends read from the receive buffer, so they must
        // wait for the local copy to land.
        begin_ring(root_);
        maybe_done(root_);
      });
  run_scatter(root_, st_[root_].sendbuf);
}

void ScatterAllgatherBcast::run_scatter(std::size_t r,
                                        std::uint64_t src_base) {
  RankState& s = st_[r];
  Endpoint& ep = comm_.ep(r);
  // Largest subtree first (critical path), strictly chained would be
  // better still, but ranges shrink geometrically so posting order
  // suffices here.
  for (const ScatterEdge& e : s.scatter_sends) {
    ep.app_worker().post(ep.costs().control, [this, r, e, src_base] {
      rdma::SendFlags flags;
      flags.imm = encode_ctrl({CtrlType::kStep, id(), /*arg=*/1});
      flags.has_imm = true;
      flags.signaled = false;
      e.qp->post_send(src_base + piece_off(e.range_lo),
                      piece_off(e.range_hi) - piece_off(e.range_lo), flags);
    });
  }
}

void ScatterAllgatherBcast::begin_ring(std::size_t r) {
  RankState& s = st_[r];
  if (s.ring_started) return;
  s.ring_started = true;
  const std::size_t P = comm_.size();
  const std::size_t v = (r + P - root_) % P;
  // The right neighbor's pre-posted receives expect our own piece first,
  // then forwards in receive order — flush anything that arrived while the
  // scatter was still in flight.
  send_piece(r, v);
  for (const std::size_t piece : s.pending_forwards) send_piece(r, piece);
  s.pending_forwards.clear();
}

void ScatterAllgatherBcast::send_piece(std::size_t r, std::size_t piece) {
  Endpoint& ep = comm_.ep(r);
  ep.app_worker().post(ep.costs().control, [this, r, piece] {
    rdma::SendFlags flags;
    flags.imm = encode_ctrl({CtrlType::kStep, id(), /*arg=*/0});
    flags.has_imm = true;
    flags.signaled = false;
    st_[r].qp_right->post_send(st_[r].recvbuf + piece_off(piece),
                               piece_len(piece), flags);
  });
}

void ScatterAllgatherBcast::on_ctrl(std::size_t r, const CtrlMsg& msg,
                                    std::size_t src, const rdma::Cqe& cqe) {
  (void)src;
  (void)cqe;
  MCCL_CHECK(msg.type == CtrlType::kStep);
  RankState& s = st_[r];
  const std::size_t P = comm_.size();
  if (msg.arg == 1) {
    // Scatter range arrived: forward sub-ranges, then join the ring.
    MCCL_CHECK(s.expects_scatter && !s.scatter_received);
    s.scatter_received = true;
    run_scatter(r, s.recvbuf);
    begin_ring(r);
    maybe_done(r);
    return;
  }
  // Ring step.
  const std::size_t v = (r + P - root_) % P;
  const std::size_t step = s.ring_steps++;
  const std::size_t piece = (v + P - 1 - step) % P;
  if (step + 1 < P - 1) {
    if (s.ring_started)
      send_piece(r, piece);
    else
      s.pending_forwards.push_back(piece);
  }
  maybe_done(r);
}

void ScatterAllgatherBcast::maybe_done(std::size_t r) {
  RankState& s = st_[r];
  if (s.op_done) return;
  if (r == root_ && !s.local_copy_done) return;
  if (s.expects_scatter && !s.scatter_received) return;
  if (s.ring_steps < comm_.size() - 1) return;
  s.op_done = true;
  phases_[r].transfer = comm_.cluster().engine().now() - start_time_;
  rank_done(r);
}

bool ScatterAllgatherBcast::verify() const {
  if (!comm_.data_mode()) return true;
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    if (!check_pattern(comm_.ep(r).nic().memory(), st_[r].recvbuf, bytes_,
                       id(), root_))
      return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// RecDoublingAllgather
// ---------------------------------------------------------------------------

RecDoublingAllgather::RecDoublingAllgather(Communicator& comm,
                                           std::uint64_t bytes)
    : OpBase(comm, "recdoubling_allgather"), bytes_(bytes) {
  const std::size_t P = comm.size();
  MCCL_CHECK(P >= 2 && bytes > 0);
  MCCL_CHECK_MSG((P & (P - 1)) == 0,
                 "recursive doubling needs a power-of-two rank count");
  rounds_ = 0;
  while ((std::size_t{1} << rounds_) < P) ++rounds_;

  st_.resize(P);
  const bool fill = comm_.data_mode();
  for (std::size_t r = 0; r < P; ++r) {
    RankState& s = st_[r];
    Endpoint& ep = comm_.ep(r);
    s.sendbuf = ep.nic().memory().alloc(bytes_);
    s.recvbuf = ep.nic().memory().alloc(bytes_ * P);
    s.partner_qps.resize(rounds_, nullptr);
    s.seen.assign(rounds_, 0);
    if (fill) fill_pattern(ep.nic().memory(), s.sendbuf, bytes_, id(), r);
    ep.register_ctrl(id(), [this, r](const CtrlMsg& m, std::size_t src,
                                     const rdma::Cqe& cqe) {
      on_ctrl(r, m, src, cqe);
    });
  }
  // One QP pair per (rank, round); pre-post the partner's range for each
  // round — ranges are deterministic from the rank bits.
  for (std::size_t k = 0; k < rounds_; ++k) {
    const std::size_t dist = std::size_t{1} << k;
    for (std::size_t r = 0; r < P; ++r) {
      const std::size_t partner = r ^ dist;
      if (partner < r) continue;  // pair created once
      auto [qa, qb] = comm_.create_qp_pair(r, partner);
      st_[r].partner_qps[k] = qa;
      st_[partner].partner_qps[k] = qb;
    }
    for (std::size_t r = 0; r < P; ++r) {
      const std::size_t partner = r ^ dist;
      const std::size_t base = partner & ~(dist - 1);
      st_[r].partner_qps[k]->post_recv(
          {.laddr = st_[r].recvbuf + base * bytes_,
           .len = static_cast<std::uint32_t>(dist * bytes_)});
    }
  }
}

RecDoublingAllgather::~RecDoublingAllgather() {
  for (std::size_t r = 0; r < comm_.size(); ++r)
    comm_.ep(r).unregister_ctrl(id());
}

void RecDoublingAllgather::start() {
  mark_started();
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    comm_.ep(r).nic().post_local_copy(
        st_[r].sendbuf, st_[r].recvbuf + r * bytes_, bytes_, [this, r] {
          st_[r].local_copy_done = true;
          send_round(r);  // round 0 needs the own block in place
        });
  }
}

void RecDoublingAllgather::send_round(std::size_t r) {
  RankState& s = st_[r];
  const std::size_t k = s.round;
  MCCL_CHECK(k < rounds_);
  const std::size_t dist = std::size_t{1} << k;
  const std::size_t base = r & ~(dist - 1);
  Endpoint& ep = comm_.ep(r);
  ep.app_worker().post(ep.costs().control, [this, r, k, base, dist] {
    rdma::SendFlags flags;
    flags.imm = encode_ctrl({CtrlType::kStep, id(),
                             static_cast<std::uint16_t>(k)});
    flags.has_imm = true;
    flags.signaled = false;
    st_[r].partner_qps[k]->post_send(st_[r].recvbuf + base * bytes_,
                                     dist * bytes_, flags);
  });
}

void RecDoublingAllgather::on_ctrl(std::size_t r, const CtrlMsg& msg,
                                   std::size_t src, const rdma::Cqe& cqe) {
  (void)src;
  (void)cqe;
  MCCL_CHECK(msg.type == CtrlType::kStep);
  RankState& s = st_[r];
  // A fast partner may deliver round k+1 before we processed round k (the
  // data already landed via the pre-posted receive); consume in order.
  MCCL_CHECK(msg.arg < rounds_);
  ++s.seen[msg.arg];
  while (s.round < rounds_ && s.seen[s.round] > 0) {
    --s.seen[s.round];
    ++s.round;
    if (s.round < rounds_) send_round(r);
  }
  if (s.round >= rounds_ && !s.op_done) {
    s.op_done = true;
    phases_[r].transfer = comm_.cluster().engine().now() - start_time_;
    rank_done(r);
  }
}

bool RecDoublingAllgather::verify() const {
  if (!comm_.data_mode()) return true;
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    for (std::size_t b = 0; b < comm_.size(); ++b) {
      if (!check_pattern(comm_.ep(r).nic().memory(),
                         st_[r].recvbuf + b * bytes_, bytes_, id(), b))
        return false;
    }
  }
  return true;
}

}  // namespace mccl::coll
