#include "src/coll/reduce_scatter.hpp"

#include <algorithm>
#include <cstring>

namespace mccl::coll {

namespace {
std::size_t ceil_log2(std::size_t n) {
  std::size_t k = 0, v = 1;
  while (v < n) {
    v *= 2;
    ++k;
  }
  return k;
}

void fill_rs_block(rdma::HostMemory& mem, std::uint64_t addr,
                   std::uint64_t bytes, std::size_t origin,
                   std::size_t block) {
  float* p = reinterpret_cast<float*>(mem.at(addr));
  for (std::uint64_t i = 0; i < bytes / sizeof(float); ++i)
    p[i] = rs_value(origin, block, i);
}
}  // namespace

// ---------------------------------------------------------------------------
// RingReduceScatter
// ---------------------------------------------------------------------------

namespace {
// Pipeline granularity: reduction and forwarding overlap with the transfer
// at segment scope (production stacks pipeline the ring the same way).
constexpr std::uint64_t kRsSegment = 128 * KiB;
}  // namespace

RingReduceScatter::RingReduceScatter(Communicator& comm,
                                     std::uint64_t block_bytes)
    : OpBase(comm, "ring_reduce_scatter"), bytes_(block_bytes) {
  const std::size_t P = comm.size();
  MCCL_CHECK(P >= 2 && bytes_ > 0 && bytes_ % sizeof(float) == 0);
  st_.resize(P);
  const bool fill = comm_.data_mode();
  for (std::size_t r = 0; r < P; ++r) {
    RankState& s = st_[r];
    Endpoint& ep = comm_.ep(r);
    s.sendbuf = ep.nic().memory().alloc(bytes_ * P);
    s.recvbuf = ep.nic().memory().alloc(bytes_);
    s.scratch = ep.nic().memory().alloc(bytes_ * (P - 1));
    if (fill)
      for (std::size_t b = 0; b < P; ++b)
        fill_rs_block(ep.nic().memory(), s.sendbuf + b * bytes_, bytes_, r, b);
    ep.register_ctrl(id(), [this, r](const CtrlMsg& m, std::size_t src,
                                     const rdma::Cqe& cqe) {
      on_ctrl(r, m, src, cqe);
    });
  }
  // Op-owned ring edges; (P-1) * segments in-order receives from the left
  // into distinct scratch slots (step-major, segment-minor order matches
  // the forwarding order, so landing addresses are known up front).
  for (std::size_t r = 0; r < P; ++r) {
    const std::size_t right = (r + 1) % P;
    auto [qa, qb] = comm_.create_qp_pair(r, right);
    st_[r].qp_right = qa;
    st_[right].qp_left = qb;
  }
  const std::size_t G = num_segments();
  for (std::size_t r = 0; r < P; ++r) {
    for (std::size_t step = 0; step + 1 < P; ++step) {
      for (std::size_t g = 0; g < G; ++g) {
        st_[r].qp_left->post_recv(
            {.wr_id = step * G + g,
             .laddr = st_[r].scratch + step * bytes_ + seg_off(g),
             .len = static_cast<std::uint32_t>(seg_len(g))});
      }
    }
  }
}

RingReduceScatter::~RingReduceScatter() {
  for (std::size_t r = 0; r < comm_.size(); ++r)
    comm_.ep(r).unregister_ctrl(id());
}

std::size_t RingReduceScatter::num_segments() const {
  return static_cast<std::size_t>((bytes_ + kRsSegment - 1) / kRsSegment);
}

std::uint64_t RingReduceScatter::seg_off(std::size_t g) const {
  return static_cast<std::uint64_t>(g) * kRsSegment;
}

std::uint64_t RingReduceScatter::seg_len(std::size_t g) const {
  const std::uint64_t off = seg_off(g);
  return std::min<std::uint64_t>(kRsSegment, bytes_ - off);
}

void RingReduceScatter::start() {
  mark_started();
  const std::size_t P = comm_.size();
  for (std::size_t r = 0; r < P; ++r) {
    // Step 0: inject our own copy of block (r-1), segment by segment.
    const std::size_t block = (r + P - 1) % P;
    for (std::size_t g = 0; g < num_segments(); ++g)
      send_from(r, st_[r].sendbuf + block * bytes_ + seg_off(g), seg_len(g));
  }
}

void RingReduceScatter::send_from(std::size_t r, std::uint64_t addr,
                                  std::uint64_t len) {
  Endpoint& ep = comm_.ep(r);
  ep.app_worker().post(ep.costs().control, [this, r, addr, len] {
    rdma::SendFlags flags;
    flags.imm = encode_ctrl({CtrlType::kStep, id(), 0});
    flags.has_imm = true;
    flags.signaled = false;
    st_[r].qp_right->post_send(addr, len, flags);
  });
}

void RingReduceScatter::accumulate(std::size_t r, std::uint64_t acc_addr,
                                   std::uint64_t own_addr,
                                   std::uint64_t len) {
  if (!comm_.data_mode()) return;
  auto& mem = comm_.ep(r).nic().memory();
  float* acc = reinterpret_cast<float*>(mem.at(acc_addr));
  const float* own = reinterpret_cast<const float*>(mem.at(own_addr));
  for (std::uint64_t i = 0; i < len / sizeof(float); ++i) acc[i] += own[i];
}

void RingReduceScatter::on_ctrl(std::size_t r, const CtrlMsg& msg,
                                std::size_t src, const rdma::Cqe& cqe) {
  (void)src;
  (void)cqe;
  MCCL_CHECK(msg.type == CtrlType::kStep);
  RankState& s = st_[r];
  const std::size_t P = comm_.size();
  const std::size_t G = num_segments();
  const std::size_t idx = s.segs_done++;
  const std::size_t step = idx / G;
  const std::size_t g = idx % G;
  const std::size_t block = (r + 2 * P - 2 - step) % P;
  const std::uint64_t acc = s.scratch + step * bytes_ + seg_off(g);
  const std::uint64_t own = s.sendbuf + block * bytes_ + seg_off(g);
  const std::uint64_t len = seg_len(g);
  Endpoint& ep = comm_.ep(r);
  // Host-side reduction, pipelined at segment granularity.
  const double units = static_cast<double>(len) / 64.0;
  const exec::Cost reduce_cost{ep.costs().reduce_per_64b.instr * units,
                               ep.costs().reduce_per_64b.stall * units};
  ep.app_worker().post(reduce_cost, [this, r, acc, own, len, g, step, block,
                                     P] {
    accumulate(r, acc, own, len);
    RankState& s2 = st_[r];
    if (step + 1 < P - 1) {
      send_from(r, acc, len);
      return;
    }
    // Final step: this segment of block r is fully reduced.
    MCCL_CHECK(block == r);
    if (comm_.data_mode()) {
      auto& mem = comm_.ep(r).nic().memory();
      mem.write(s2.recvbuf + seg_off(g), mem.at(acc), len);
    }
    if (++s2.finals_done == num_segments()) {
      s2.op_done = true;
      phases_[r].transfer = comm_.cluster().engine().now() - start_time_;
      rank_done(r);
    }
  });
}

bool RingReduceScatter::verify() const {
  if (!comm_.data_mode()) return true;
  const std::size_t P = comm_.size();
  for (std::size_t r = 0; r < P; ++r) {
    const float* got = reinterpret_cast<const float*>(
        comm_.ep(r).nic().memory().at(st_[r].recvbuf));
    for (std::uint64_t i = 0; i < bytes_ / sizeof(float); ++i) {
      float want = 0;
      for (std::size_t o = 0; o < P; ++o) want += rs_value(o, r, i);
      if (got[i] != want) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// IncReduceScatter
// ---------------------------------------------------------------------------

IncReduceScatter::IncReduceScatter(Communicator& comm,
                                   std::uint64_t block_bytes)
    : OpBase(comm, "inc_reduce_scatter"),
      bytes_(block_bytes),
      chunk_bytes_(comm.config().chunk_bytes) {
  const std::size_t P = comm.size();
  MCCL_CHECK(P >= 2 && bytes_ > 0 && bytes_ % sizeof(float) == 0);
  MCCL_CHECK_MSG(comm_.cluster().config().fabric.drop_prob == 0,
                 "the INC substrate assumes a lossless fabric");
  chunks_per_block_ = static_cast<std::size_t>(
      (bytes_ + chunk_bytes_ - 1) / chunk_bytes_);

  inc::SessionConfig scfg;
  for (std::size_t r = 0; r < P; ++r)
    scfg.hosts.push_back(comm_.ep(r).host());
  session_ = comm_.cluster().inc().create_session(scfg);

  st_.resize(P);
  const bool fill = comm_.data_mode();
  for (std::size_t r = 0; r < P; ++r) {
    RankState& s = st_[r];
    Endpoint& ep = comm_.ep(r);
    s.sendbuf = ep.nic().memory().alloc(bytes_ * P);
    s.recvbuf = ep.nic().memory().alloc(bytes_);
    if (fill)
      for (std::size_t b = 0; b < P; ++b)
        fill_rs_block(ep.nic().memory(), s.sendbuf + b * bytes_, bytes_, r, b);

    // Reduced chunks arrive through a dedicated CQ so the receive worker
    // charges the per-chunk datapath cost before the result is consumed.
    s.result_cq = &ep.nic().create_cq();
    ep.recv_worker(0).subscribe(
        *s.result_cq,
        [this, r](const rdma::Cqe& cqe) { on_result(r, cqe); },
        ep.costs().recv_chunk_uc);
    comm_.cluster().inc().set_result_sink(
        session_, ep.host(),
        [this, r](std::uint32_t chunk, std::uint32_t len,
                  const fabric::Payload& payload) {
          RankState& s2 = st_[r];
          if (!payload.empty()) s2.payloads[chunk] = payload;
          rdma::Cqe cqe;
          cqe.opcode = rdma::CqeOpcode::kRecvWriteImm;
          cqe.imm = chunk;
          cqe.has_imm = true;
          cqe.byte_len = len;
          s2.result_cq->push(cqe);
        });
  }
}

IncReduceScatter::~IncReduceScatter() = default;

void IncReduceScatter::start() {
  mark_started();
  for (std::size_t r = 0; r < comm_.size(); ++r)
    contribute_batch(r, 1, 0);
}

void IncReduceScatter::contribute_batch(std::size_t r, std::size_t peer_off,
                                        std::size_t chunk) {
  // Walk (owner, chunk) pairs in batches on the send worker; each posted
  // chunk is one contribution packet up the owner's reduction tree.
  const std::size_t P = comm_.size();
  if (peer_off >= P) return;
  Endpoint& ep = comm_.ep(r);
  const std::size_t batch =
      std::min(comm_.config().send_batch, chunks_per_block_ - chunk);
  const exec::Cost cost =
      exec::Cost{ep.send_costs().send_post.instr * batch,
                 ep.send_costs().send_post.stall * batch} +
      ep.send_costs().doorbell;
  ep.send_worker(0).post(cost, [this, r, peer_off, chunk, batch] {
    const std::size_t P = comm_.size();
    RankState& s = st_[r];
    Endpoint& ep2 = comm_.ep(r);
    const std::size_t owner_rank = (r + peer_off) % P;
    const fabric::NodeId owner = comm_.ep(owner_rank).host();
    for (std::size_t k = 0; k < batch; ++k) {
      const std::size_t c = chunk + k;
      const std::uint64_t off =
          static_cast<std::uint64_t>(c) * chunk_bytes_;
      const std::uint32_t len = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(chunk_bytes_, bytes_ - off));
      fabric::Payload payload;
      if (comm_.data_mode()) {
        const std::uint8_t* src =
            ep2.nic().memory().at(s.sendbuf + owner_rank * bytes_ + off);
        payload = fabric::Payload::copy_of(src, len);
      }
      comm_.cluster().inc().contribute(
          session_, ep2.host(), owner, static_cast<std::uint32_t>(c), len,
          std::move(payload), [&ep2](const fabric::PacketPtr& pkt) {
            ep2.nic().transmit(rdma::Nic::kIncTxQueue, pkt);
          });
    }
    std::size_t next_chunk = chunk + batch;
    std::size_t next_peer = peer_off;
    if (next_chunk >= chunks_per_block_) {
      next_chunk = 0;
      ++next_peer;
    }
    contribute_batch(r, next_peer, next_chunk);
  });
}

void IncReduceScatter::on_result(std::size_t r, const rdma::Cqe& cqe) {
  RankState& s = st_[r];
  const std::uint32_t chunk = cqe.imm;
  if (comm_.data_mode()) {
    auto it = s.payloads.find(chunk);
    MCCL_CHECK(it != s.payloads.end());
    auto& mem = comm_.ep(r).nic().memory();
    const std::uint64_t off = static_cast<std::uint64_t>(chunk) * chunk_bytes_;
    float* dst = reinterpret_cast<float*>(mem.at(s.recvbuf + off));
    const float* net = reinterpret_cast<const float*>(it->second.data());
    const float* own = reinterpret_cast<const float*>(
        mem.at(s.sendbuf + r * bytes_ + off));
    const std::size_t n = cqe.byte_len / sizeof(float);
    for (std::size_t i = 0; i < n; ++i) dst[i] = net[i] + own[i];
    s.payloads.erase(it);
  }
  if (++s.chunks_done == chunks_per_block_) {
    s.op_done = true;
    phases_[r].transfer = comm_.cluster().engine().now() - start_time_;
    rank_done(r);
  }
}

bool IncReduceScatter::verify() const {
  if (!comm_.data_mode()) return true;
  const std::size_t P = comm_.size();
  for (std::size_t r = 0; r < P; ++r) {
    const float* got = reinterpret_cast<const float*>(
        comm_.ep(r).nic().memory().at(st_[r].recvbuf));
    for (std::uint64_t i = 0; i < bytes_ / sizeof(float); ++i) {
      float want = 0;
      for (std::size_t o = 0; o < P; ++o) want += rs_value(o, r, i);
      if (got[i] != want) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// BarrierOp
// ---------------------------------------------------------------------------

BarrierOp::BarrierOp(Communicator& comm)
    : OpBase(comm, "barrier"), rounds_(ceil_log2(comm.size())) {
  st_.resize(comm.size());
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    st_[r].seen.assign(rounds_ == 0 ? 1 : rounds_, 0);
    comm_.ep(r).register_ctrl(
        id(), [this, r](const CtrlMsg& m, std::size_t, const rdma::Cqe&) {
          MCCL_CHECK(m.type == CtrlType::kBarrier);
          ++st_[r].seen[m.arg];
          advance(r);
        });
  }
}

BarrierOp::~BarrierOp() {
  for (std::size_t r = 0; r < comm_.size(); ++r)
    comm_.ep(r).unregister_ctrl(id());
}

void BarrierOp::start() {
  mark_started();
  for (std::size_t r = 0; r < comm_.size(); ++r) {
    if (rounds_ == 0) {
      st_[r].done = true;
      rank_done(r);
      continue;
    }
    send_round(r);
  }
}

void BarrierOp::send_round(std::size_t r) {
  RankState& s = st_[r];
  const std::size_t P = comm_.size();
  comm_.ep(r).ctrl_send((r + (std::size_t{1} << s.round)) % P,
                        {CtrlType::kBarrier, id(),
                         static_cast<std::uint16_t>(s.round)});
  advance(r);
}

void BarrierOp::advance(std::size_t r) {
  RankState& s = st_[r];
  while (s.round < rounds_ && s.seen[s.round] > 0) {
    --s.seen[s.round];
    ++s.round;
    if (s.round < rounds_) {
      send_round(r);
      return;
    }
  }
  if (s.round >= rounds_ && !s.done) {
    s.done = true;
    phases_[r].barrier = comm_.cluster().engine().now() - start_time_;
    rank_done(r);
  }
}

}  // namespace mccl::coll
