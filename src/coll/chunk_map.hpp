// Chunk geometry for the multicast fast path.
//
// An op moves `blocks` equal blocks of `block_bytes` (one per broadcasting
// root; a plain Broadcast has one block, an Allgather has P). Each block is
// fragmented into chunks of `chunk_bytes`; the *global chunk id* — carried
// in the CQE immediate (the PSN of Section III-A) — addresses the receive
// region directly, so out-of-order and multi-root arrivals land at the right
// offset without sender-specific state.
//
// Within a block, chunk indices are partitioned contiguously across
// `subgroups` multicast subgroups (Section IV-C: contiguous send-buffer
// blocks map to subgroup QPs, keeping bitmaps thread-local).
#pragma once

#include <cstdint>

#include "src/common/check.hpp"

namespace mccl::coll {

struct ChunkMap {
  std::uint64_t block_bytes = 0;
  std::uint32_t chunk_bytes = 4096;
  std::size_t subgroups = 1;
  std::size_t blocks = 1;

  ChunkMap() = default;
  ChunkMap(std::uint64_t block, std::uint32_t chunk, std::size_t sgs,
           std::size_t nblocks)
      : block_bytes(block),
        chunk_bytes(chunk),
        subgroups(sgs),
        blocks(nblocks) {
    MCCL_CHECK(block_bytes > 0 && chunk_bytes > 0 && subgroups >= 1);
    MCCL_CHECK(blocks >= 1);
    MCCL_CHECK_MSG(subgroups <= chunks_per_block(),
                   "more subgroups than chunks per block");
  }

  std::size_t chunks_per_block() const {
    return static_cast<std::size_t>((block_bytes + chunk_bytes - 1) /
                                    chunk_bytes);
  }
  std::size_t total_chunks() const { return blocks * chunks_per_block(); }

  std::size_t block_of(std::uint32_t id) const {
    return id / chunks_per_block();
  }
  /// Chunk index within its block.
  std::size_t index_of(std::uint32_t id) const {
    return id % chunks_per_block();
  }
  std::uint32_t id_of(std::size_t block, std::size_t index) const {
    return static_cast<std::uint32_t>(block * chunks_per_block() + index);
  }

  /// Byte offset of the chunk in the receive region.
  std::uint64_t offset_of(std::uint32_t id) const {
    return block_of(id) * block_bytes +
           static_cast<std::uint64_t>(index_of(id)) * chunk_bytes;
  }
  /// Byte offset of the chunk within its root's send buffer.
  std::uint64_t send_offset_of(std::uint32_t id) const {
    return static_cast<std::uint64_t>(index_of(id)) * chunk_bytes;
  }
  std::uint32_t len_of(std::uint32_t id) const {
    const std::uint64_t begin =
        static_cast<std::uint64_t>(index_of(id)) * chunk_bytes;
    return static_cast<std::uint32_t>(
        begin + chunk_bytes <= block_bytes ? chunk_bytes
                                           : block_bytes - begin);
  }

  /// Subgroup serving this chunk (balanced contiguous partition of the
  /// block-local index space).
  std::size_t subgroup_of(std::uint32_t id) const {
    return index_of(id) * subgroups / chunks_per_block();
  }
  /// Number of block-local chunk indices assigned to subgroup `s`.
  std::size_t chunks_in_subgroup(std::size_t s) const {
    const std::size_t cpb = chunks_per_block();
    // indices i with i*S/cpb == s form a contiguous [lo, hi) range.
    const std::size_t lo = (s * cpb + subgroups - 1) / subgroups;
    const std::size_t hi = ((s + 1) * cpb + subgroups - 1) / subgroups;
    return hi - lo;
  }
};

}  // namespace mccl::coll
