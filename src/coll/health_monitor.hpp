// Online health plane for performance-fault adaptation.
//
// Crash tolerance (failure_detector.hpp) handles the binary failure mode;
// this component handles the harder one from "Don't Let a Few Network
// Failures Slow the Entire AllReduce" (PAPERS.md): *silent degradation* —
// a lossy-but-alive link or a straggling host that throttles the whole
// bandwidth-optimal collective to the speed of its slowest participant.
//
// The monitor maintains two kinds of sim-time health scores:
//
//  - Per-peer (per observer): an EWMA of normalized service samples fed by
//    the protocol layers — heartbeat inter-arrival gaps (reusing the
//    failure detector's control plane), fetch request->ack latencies,
//    fetch retry timeouts, and blocks still incomplete at cutoff while
//    their root is alive. A peer whose score stays above `slow_enter` for
//    `dwell` consecutive samples is marked *slow*; it is cleared again
//    after `dwell` consecutive samples at or below `slow_exit`
//    (enter/exit hysteresis plus dwell prevents flapping). Transitions fan
//    out to in-flight collectives, which shift block-root responsibility
//    away from slow roots (CtrlType::kSlowRoot), detour fetch chains
//    around lagging ranks, and demote lagging roots out of the chain
//    token's critical path.
//
//  - Per-link-direction: a periodic (seeded-phase) sampler over the
//    fabric's DirCounters and serializer backlogs. A direction whose
//    windowed drop fraction or serializer backlog stays bad for
//    `link_dwell` consecutive windows is deweighted in the fabric's ECMP
//    tables (Fabric::set_dir_weight): its siblings at the same node get
//    `healthy_weight`, the bad direction `lossy_weight`, steering unicast
//    flows (fetch reads, control) around lossy-but-alive paths the binary
//    viability table would keep using. Restoration is symmetric.
//
// Everything is driven by engine events at simulated times with
// deterministic inputs, so identical seeds replay bit-identically. The
// validator plane guards the policies: "adapt.oscillation" fires when one
// peer or direction flips state more than `max_transitions` times
// (hysteresis misconfigured or a feedback loop), and the collectives'
// "adapt.ownership_conservation" checks every slow re-root decision names
// an alive full holder.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/units.hpp"

namespace mccl::telemetry {
class Counter;
}  // namespace mccl::telemetry

namespace mccl::coll {

class Communicator;

struct HealthConfig {
  /// Master switch: when false the communicator builds no monitor and all
  /// adaptation policies are inert (the static baseline).
  bool enabled = false;

  // --- per-peer slowness scoring -------------------------------------------
  /// EWMA weight of a new protocol sample (fetch ack/timeout, late block).
  double ewma_alpha = 0.25;
  /// EWMA weight of a heartbeat-gap sample. Heartbeats are frequent and
  /// barely delayed by compute stragglers (they only cross the app worker),
  /// so they act as slow decay toward "nominal" rather than a trigger.
  double heartbeat_alpha = 0.05;
  /// Normalized score thresholds (1.0 = nominal service). Enter above,
  /// exit below, `dwell` consecutive qualifying samples each way.
  double slow_enter = 1.8;
  double slow_exit = 1.2;
  std::uint32_t dwell = 2;
  /// Sample value for a fetch retry timeout / block-late-at-cutoff event
  /// (both mean service is at least this many nominal units late).
  double timeout_sample = 3.0;

  // --- per-link-direction health -------------------------------------------
  /// Sampling period of the fabric sweep (runs only while ops are in
  /// flight, with a seeded phase so replays are bit-identical).
  Time sample_interval = 25 * kMicrosecond;
  /// Windowed drop fraction to enter/exit the unhealthy state. Windows
  /// with fewer than `min_window_packets` packets are ignored.
  double drop_enter = 0.08;
  double drop_exit = 0.0;
  std::uint64_t min_window_packets = 16;
  /// Peak serializer backlog within a sampling window (booked wire time
  /// beyond now, max-held by the fabric like a switch's max-queue-depth
  /// register) to enter/exit — the queue-depth/ECN analog that catches
  /// degraded links that slow down without dropping. The enter threshold
  /// must sit above the transient backlog a send-batch burst books on a
  /// healthy link (a few µs at line rate) but below what the same burst
  /// books once bandwidth degrades.
  Time backlog_enter = 10 * kMicrosecond;
  Time backlog_exit = 2 * kMicrosecond;
  std::uint32_t link_dwell = 2;
  /// ECMP weights applied around an unhealthy direction: the bad direction
  /// gets `lossy_weight`, its same-origin siblings `healthy_weight` (all
  /// restored to the default 1 when the node has no unhealthy egress).
  std::uint16_t healthy_weight = 15;
  std::uint16_t lossy_weight = 1;

  // --- predictive (trend) link scoring -------------------------------------
  /// The reactive plane above reacts *after* a direction has been bad for
  /// `link_dwell` windows. The predictive scorer runs on the same window
  /// samples but projects forward: each window's severity (how close the
  /// direction sits to its unhealthy thresholds, 1.0 = at threshold) feeds
  /// a level EWMA and a slope EWMA, and a direction whose projected
  /// severity `level + risk_horizon * slope` crosses `risk_enter` while
  /// still trending up is flagged *at risk* in the fabric
  /// (Fabric::set_dir_at_risk). The flag is advisory: routing never
  /// changes, but the cluster scheduler's admission controller defers new
  /// placements while too many directions are about to go sick. Cleared
  /// when the projection falls back through `risk_exit`, or the moment the
  /// reactive plane takes over (unhealthy implies deweighted, which
  /// admission already gates on).
  bool predictive = true;
  double severity_alpha = 0.5;  // EWMA weight of a window's severity
  double trend_alpha = 0.5;     // EWMA weight of the severity slope
  double risk_horizon = 3.0;    // windows of lookahead in the projection
  double risk_enter = 1.0;      // projected severity to mark at-risk
  double risk_exit = 0.5;       // projected severity to clear the mark

  /// Validator bound ("adapt.oscillation"): state flips per peer pair or
  /// per direction beyond this report a violation in MCCL_VALIDATE builds.
  std::uint32_t max_transitions = 8;
  /// Seeds the link-sampler phase.
  std::uint64_t seed = 1;
};

class HealthMonitor {
 public:
  /// Called on every per-observer slow-state transition (slow=true on
  /// mark, false on clear), in transition order.
  using SlowListener =
      std::function<void(std::size_t observer, std::size_t peer, bool slow)>;

  HealthMonitor(Communicator& comm, HealthConfig cfg);

  const HealthConfig& config() const { return cfg_; }
  void add_listener(SlowListener fn) {
    listeners_.push_back(std::move(fn));
  }

  /// Op lifecycle: the link sampler runs only while ops are in flight.
  void note_op_started();
  void note_op_finished();
  bool active() const { return active_ops_ > 0; }

  // --- observation hooks (wired by communicator / collectives) -------------
  /// Heartbeat receipt at `observer` from `src` (same control-plane event
  /// the failure detector consumes).
  void on_heartbeat(std::size_t observer, std::size_t src);
  /// A fetch request to `peer` was ACKed after `latency` of sim time.
  void note_fetch_ack(std::size_t observer, std::size_t peer, Time latency);
  /// A fetch request to `peer` hit its retry timeout.
  void note_fetch_timeout(std::size_t observer, std::size_t peer);
  /// At cutoff, `observer` was still missing chunks of a block whose root
  /// is alive — the root (or its path) is late, not dead.
  void note_block_late(std::size_t observer, std::size_t root);

  // --- health queries ------------------------------------------------------
  bool slow(std::size_t observer, std::size_t peer) const {
    return peers_[observer * n_ + peer].slow;
  }
  double score(std::size_t observer, std::size_t peer) const {
    return peers_[observer * n_ + peer].ewma;
  }
  bool dir_unhealthy(std::size_t dir) const { return links_[dir].unhealthy; }
  bool dir_at_risk(std::size_t dir) const { return links_[dir].at_risk; }
  /// Unhealthy link directions on `rail`'s plane (host links count toward
  /// their switch endpoint's rail). Drives multicast subgroup re-balancing.
  std::size_t unhealthy_dirs_on_rail(int rail) const;

  // --- decision counters (coll.adapt.* metrics) ----------------------------
  std::uint64_t slow_marks() const { return slow_marks_; }
  std::uint64_t slow_clears() const { return slow_clears_; }
  std::uint64_t link_deweights() const { return link_deweights_; }
  std::uint64_t link_restores() const { return link_restores_; }
  std::uint64_t predict_marks() const { return predict_marks_; }
  std::uint64_t predict_clears() const { return predict_clears_; }

  /// Validate-build fault-injection hook: forces `n` mark/clear flips on
  /// one pair, tripping "adapt.oscillation" once the bound is exceeded.
  void test_force_flap(std::size_t observer, std::size_t peer,
                       std::uint32_t n);
  /// Test hook: feeds one synthetic severity window into the predictive
  /// trend scorer for `dir` (the same path sample_links() drives), so unit
  /// tests can replay an exact degradation ramp without shaping traffic.
  void test_observe_link(std::size_t dir, double severity) {
    score_trend(dir, severity);
  }

 private:
  struct PeerHealth {
    double ewma = 1.0;  // normalized service score (1.0 = nominal)
    Time last_heartbeat = -1;
    std::uint32_t enter_dwell = 0;
    std::uint32_t exit_dwell = 0;
    bool slow = false;
    std::uint32_t transitions = 0;
  };
  struct LinkHealth {
    std::uint64_t last_packets = 0;
    std::uint64_t last_drops = 0;
    std::uint32_t bad_windows = 0;
    std::uint32_t good_windows = 0;
    bool unhealthy = false;
    std::uint32_t transitions = 0;
    // Predictive trend state (see HealthConfig::predictive).
    double sev_ewma = 0.0;    // smoothed window severity
    double slope_ewma = 0.0;  // smoothed severity delta per window
    bool at_risk = false;
  };

  void observe(std::size_t observer, std::size_t peer, double sample,
               double alpha);
  void set_slow(std::size_t observer, std::size_t peer, bool slow);
  void sample_links();
  /// One predictive-scorer step for `dir` on a fresh window severity.
  void score_trend(std::size_t dir, double severity);
  void schedule_sample(std::uint64_t gen);
  /// Applies ECMP weights for every egress direction of the node that owns
  /// `dir` (siblings included; see HealthConfig weight semantics).
  void reweight_node_of(std::size_t dir);
  /// Re-weights every host's per-rail uplinks from rail health. On a
  /// multi-rail fabric the host's injection choice *is* the path choice — a
  /// 1-spine-per-rail plane has no lateral ECMP once inside — so a sick
  /// trunk deep in one plane is dodged by deweighting that whole rail at
  /// every host.
  void reweight_host_rails();

  Communicator& comm_;
  HealthConfig cfg_;
  std::size_t n_;                  // communicator size
  std::vector<PeerHealth> peers_;  // observer * n_ + peer
  std::vector<LinkHealth> links_;  // per fabric link direction
  std::vector<SlowListener> listeners_;
  std::size_t active_ops_ = 0;
  std::uint64_t generation_ = 0;  // invalidates samplers across idle windows
  Time sample_phase_ = 0;         // deterministic first-sample offset

  std::uint64_t slow_marks_ = 0;
  std::uint64_t slow_clears_ = 0;
  std::uint64_t link_deweights_ = 0;
  std::uint64_t link_restores_ = 0;
  std::uint64_t predict_marks_ = 0;
  std::uint64_t predict_clears_ = 0;
  // Registry references resolved once at wiring time.
  telemetry::Counter* ctr_slow_marks_ = nullptr;
  telemetry::Counter* ctr_slow_clears_ = nullptr;
  telemetry::Counter* ctr_link_deweights_ = nullptr;
  telemetry::Counter* ctr_link_restores_ = nullptr;
  telemetry::Counter* ctr_predict_marks_ = nullptr;
  telemetry::Counter* ctr_predict_clears_ = nullptr;
};

}  // namespace mccl::coll
