// Compiled-in invariant validator plane (the MCCL_VALIDATE build mode).
//
// The simulator's correctness claims rest on invariants that no single test
// asserts end to end: PSN/bitmap conservation, ring-ordered fetch legality,
// slot/packet pool balance, and byte-identical event-stream determinism.
// This header is the one place those invariants report through.
//
// Usage: configure with -DMCCL_VALIDATE=ON. Checkers are written as
//
//   MCCL_VALIDATE_THAT(cond, "layer.checker_id", "fmt", args...);
//
// In a regular build `kValidate` is a compile-time false and the whole
// statement folds away — hot paths pay nothing, which is why the checks can
// live inline in dispatch loops. In a validate build a failed condition
// produces a structured Violation{checker, detail} that is either delivered
// to an installed ViolationTrap (tests asserting that a deliberately injected
// corruption trips the right checker) or printed and fatal (CI, examples).
//
// Checker ids are dotted and stable: "engine.slot_leak", "packet.pool_leak",
// "rc.ack_beyond_window", "coll.barrier_credit_balance", ... — see DESIGN.md
// "Correctness tooling" for the full inventory.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mccl::debug {

#if defined(MCCL_VALIDATE)
inline constexpr bool kValidate = true;
#else
inline constexpr bool kValidate = false;
#endif

/// True in MCCL_VALIDATE builds. Runtime alias of kValidate so tests can
/// GTEST_SKIP in regular builds instead of silently passing.
inline bool enabled() { return kValidate; }

/// One tripped invariant: which checker, and a formatted diagnostic.
struct Violation {
  std::string checker;
  std::string detail;
};

/// Reports a violation (printf-style detail). Default disposition is
/// print-and-abort; with a ViolationTrap installed the violation is recorded
/// and execution continues, so tests can observe the structured diagnostic.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void report(const char* checker, const char* fmt, ...);

/// Total violations reported since process start (trapped or not).
std::uint64_t violation_count();

/// RAII sink for tests: while alive, violations are collected instead of
/// aborting. Traps nest (latest wins).
class ViolationTrap {
 public:
  ViolationTrap();
  ViolationTrap(const ViolationTrap&) = delete;
  ViolationTrap& operator=(const ViolationTrap&) = delete;
  ~ViolationTrap();

  const std::vector<Violation>& violations() const { return caught_; }
  bool empty() const { return caught_.empty(); }
  std::size_t size() const { return caught_.size(); }
  /// True if any caught violation's checker id equals `checker` (or starts
  /// with it followed by '.', so "rc" matches "rc.ack_beyond_window").
  bool tripped(std::string_view checker) const;

 private:
  friend void report(const char*, const char*, ...);
  std::vector<Violation> caught_;
  ViolationTrap* prev_ = nullptr;
};

/// FNV-1a-style mix for the determinism auditor: the engine folds every
/// dispatched event into a running hash; two runs of the same configuration
/// must produce the same digest.
inline std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ULL;
  h ^= h >> 32;
  return h;
}
inline constexpr std::uint64_t kHashSeed = 0xcbf29ce484222325ULL;

}  // namespace mccl::debug

/// Invariant check: zero-cost unless built with MCCL_VALIDATE. `cond` must
/// be side-effect free. The checker id is a stable dotted string; `...` is a
/// printf-style diagnostic (always provide one — a violation with no state
/// attached is not actionable).
#define MCCL_VALIDATE_THAT(cond, checker, ...)                 \
  do {                                                         \
    if (::mccl::debug::kValidate && !(cond))                   \
      ::mccl::debug::report((checker), __VA_ARGS__);           \
  } while (0)
