#include "src/debug/validate.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace mccl::debug {
namespace {

// Single-threaded by construction (the simulator has one event loop), so a
// plain pointer stack suffices.
ViolationTrap* g_trap = nullptr;
std::uint64_t g_count = 0;

}  // namespace

void report(const char* checker, const char* fmt, ...) {
  char buf[512];
  std::va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  ++g_count;
  if (g_trap != nullptr) {
    g_trap->caught_.push_back(Violation{checker, buf});
    return;
  }
  std::fprintf(stderr, "mccl validate violation: [%s] %s\n", checker, buf);
  std::abort();
}

std::uint64_t violation_count() { return g_count; }

ViolationTrap::ViolationTrap() : prev_(g_trap) { g_trap = this; }

ViolationTrap::~ViolationTrap() { g_trap = prev_; }

bool ViolationTrap::tripped(std::string_view checker) const {
  for (const Violation& v : caught_) {
    if (v.checker == checker) return true;
    if (v.checker.size() > checker.size() &&
        v.checker.compare(0, checker.size(), checker) == 0 &&
        v.checker[checker.size()] == '.')
      return true;
  }
  return false;
}

}  // namespace mccl::debug
