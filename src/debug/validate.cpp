#include "src/debug/validate.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace mccl::debug {
namespace {

// Reporting must be thread-safe since the ParallelEngine runs shard cores
// on worker threads and any of them may trip a validator. Trap install /
// uninstall still happens on the driving thread only (traps are scoped
// objects in tests), but the mutex makes concurrent reports — and reports
// racing a trap's caught_ push — well defined.
std::mutex g_mu;
ViolationTrap* g_trap = nullptr;
std::uint64_t g_count = 0;

}  // namespace

void report(const char* checker, const char* fmt, ...) {
  char buf[512];
  std::va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  std::unique_lock<std::mutex> lock(g_mu);
  ++g_count;
  if (g_trap != nullptr) {
    g_trap->caught_.push_back(Violation{checker, buf});
    return;
  }
  lock.unlock();
  std::fprintf(stderr, "mccl validate violation: [%s] %s\n", checker, buf);
  std::abort();
}

std::uint64_t violation_count() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_count;
}

ViolationTrap::ViolationTrap() {
  std::lock_guard<std::mutex> lock(g_mu);
  prev_ = g_trap;
  g_trap = this;
}

ViolationTrap::~ViolationTrap() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_trap = prev_;
}

bool ViolationTrap::tripped(std::string_view checker) const {
  for (const Violation& v : caught_) {
    if (v.checker == checker) return true;
    if (v.checker.size() > checker.size() &&
        v.checker.compare(0, checker.size(), checker) == 0 &&
        v.checker[checker.size()] == '.')
      return true;
  }
  return false;
}

}  // namespace mccl::debug
