// Execution model for protocol progress engines.
//
// A Complex is a clocked multi-core compute substrate: the DPA (16 RISC-V
// cores x 16 hardware threads @ 1.8 GHz) or a host CPU (N cores x 1 thread
// @ 2.6 GHz). Each core owns an instruction-issue pipeline (a FIFO
// resource); a Worker is one hardware thread bound to a core.
//
// Task execution charges two cost components, matching the paper's analysis
// that the datapath is dominated by low-IPC data movement (Table I):
//  - `instr` cycles occupy the core's shared issue pipeline,
//  - `stall` cycles (memory/PCIe latency) occupy only the worker itself.
// Hence a single worker processes one CQE per (instr + stall) cycles, while
// co-resident workers overlap their stalls and a full core saturates at one
// CQE per `instr` cycles — the hardware-multithreading latency hiding the
// DPA is built for (Figs 13, 14, 16 emerge from exactly this mechanism).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/units.hpp"
#include "src/rdma/cq.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/resource.hpp"
#include "src/telemetry/trace.hpp"

namespace mccl::telemetry {
class Telemetry;
}  // namespace mccl::telemetry

namespace mccl::exec {

/// Cycle cost of one task on a worker.
struct Cost {
  double instr = 0;  // issue-pipeline cycles (shared per core)
  double stall = 0;  // latency cycles hidden by multithreading
  double cycles() const { return instr + stall; }

  Cost operator+(const Cost& o) const {
    return {instr + o.instr, stall + o.stall};
  }
};

struct Core {
  sim::Resource issue;
  std::size_t workers = 0;
};

class Worker;

class Complex {
 public:
  struct Config {
    std::size_t cores = 16;
    std::size_t threads_per_core = 16;
    double ghz = 1.8;
  };

  /// NVIDIA DPA as integrated in BlueField-3 / ConnectX-7.
  static Config dpa_config() { return {16, 16, 1.8}; }
  /// Server-grade host CPU (per-core workers, no HW multithreading model).
  static Config cpu_config(std::size_t cores = 24) { return {cores, 1, 2.6}; }

  Complex(sim::Engine& engine, Config config);

  sim::Engine& engine() { return engine_; }
  double ghz() const { return config_.ghz; }
  std::size_t num_cores() const { return cores_.size(); }

  /// Straggler injection (fault plane): every task executed while the scale
  /// is s takes s times as long (instruction and stall components alike),
  /// modeling a paused or oversubscribed node. 1.0 = nominal. Transitions
  /// are mirrored into telemetry (worker.straggler_active gauge + flight
  /// recorder) when a hook is attached, so detectors and tests can observe
  /// the window instead of inferring it from slowed completions.
  void set_cost_scale(double scale);
  double cost_scale() const { return cost_scale_; }
  /// Attaches the telemetry hook for cost-scale transitions. `node` is the
  /// owning host id (gauge label / recorder ring); `engine_name` must point
  /// at static storage (e.g. "cpu", "dpa").
  void set_telemetry(telemetry::Telemetry* telem, std::int32_t node,
                     const char* engine_name);
  std::size_t capacity() const {
    return config_.cores * config_.threads_per_core;
  }

  /// Creates a worker with compact placement: fills all hardware threads of
  /// core 0, then core 1, ... (the paper's co-location policy, Section
  /// VI-C: it exercises worker contention on shared core resources).
  Worker& create_worker();
  /// Creates a worker pinned to a specific core.
  Worker& create_worker_on(std::size_t core);

  std::size_t num_workers() const { return workers_.size(); }
  Worker& worker(std::size_t i) { return *workers_[i]; }

  /// Flushes every worker's open occupancy span (before writing a trace).
  void flush_trace();

 private:
  friend class Worker;
  sim::Engine& engine_;
  Config config_;
  double cost_scale_ = 1.0;
  telemetry::Telemetry* telem_ = nullptr;
  std::int32_t telem_node_ = -1;
  const char* telem_engine_ = "";
  std::vector<Core> cores_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

class Worker : public rdma::Cq::Consumer {
 public:
  using CqeHandler = std::function<void(const rdma::Cqe&)>;
  using CqeCostFn = std::function<Cost(const rdma::Cqe&)>;

  Worker(Complex& complex, std::size_t core_index);
  ~Worker();  // flushes any open trace span

  Complex& complex() { return complex_; }
  std::size_t core_index() const { return core_; }

  /// Binds this worker to a tracer row. Busy intervals are emitted as
  /// *coalesced* occupancy spans: back-to-back tasks merge into one span,
  /// and a span closes when a gap appears (or at flush). Coalescing keeps
  /// trace volume proportional to idle/busy transitions instead of CQE
  /// count — per-CQE spans would be millions of slivers on large runs.
  void set_trace(telemetry::Tracer* tracer, telemetry::TrackId track);
  /// Emits the open occupancy span, if any (teardown / trace write).
  void flush_trace();

  /// Enqueues a task: `fn` runs after the cost has been charged (FIFO per
  /// worker). Zero-cost tasks are allowed (control decisions). Tasks are
  /// stored as InlineCallback cells — captures up to the inline budget never
  /// touch the allocator (this path runs once per CQE).
  template <typename F>
  void post(Cost cost, F&& fn) {
    queue_.push_back(Task{cost, sim::InlineCallback(std::forward<F>(fn))});
    pump();
  }

  /// Subscribes to a CQ: every CQE is drained into this worker's task queue
  /// with `cost_of(cqe)` charged before `handler(cqe)` runs. A worker may
  /// poll several CQs (the paper maps one worker to one or more multicast
  /// subgroups); each CQ has exactly one consumer.
  void subscribe(rdma::Cq& cq, CqeHandler handler, CqeCostFn cost_of);
  void subscribe(rdma::Cq& cq, CqeHandler handler, Cost per_cqe);

  // rdma::Cq::Consumer
  void on_cqe(rdma::Cq& cq) override;

  // --- statistics -----------------------------------------------------------
  std::uint64_t tasks_done() const { return tasks_done_; }
  std::uint64_t cqes_seen() const { return cqes_seen_; }
  double total_instr() const { return total_instr_; }
  double total_stall() const { return total_stall_; }
  Time busy_time() const { return busy_time_; }
  /// Achieved instructions per cycle over this worker's busy time.
  double ipc() const;
  void reset_stats();

 private:
  struct Task {
    Cost cost;
    sim::InlineCallback fn;
  };

  struct Subscription {
    CqeHandler handler;
    CqeCostFn cost_of;
  };

  void pump();
  void run_front();

  Complex& complex_;
  std::size_t core_;
  std::deque<Task> queue_;
  bool running_ = false;
  Time thread_free_ = 0;
  telemetry::Tracer* tracer_ = nullptr;
  telemetry::TrackId trace_track_ = 0;
  bool span_open_ = false;
  Time span_start_ = 0;
  Time span_end_ = 0;
  std::unordered_map<rdma::Cq*, Subscription> subs_;

  std::uint64_t tasks_done_ = 0;
  std::uint64_t cqes_seen_ = 0;
  double total_instr_ = 0;
  double total_stall_ = 0;
  Time busy_time_ = 0;
};

}  // namespace mccl::exec
