// Datapath cycle-cost models.
//
// Calibration sources:
//  - DPA: paper Table I — the UD receive datapath retires 113 instructions
//    and ~1084 cycles per CQE (IPC 0.1); UC retires 66 instructions and
//    ~598 cycles per CQE (IPC 0.11). We split each into issue (instr) and
//    latency (stall) components; throughput and IPC then *emerge* from the
//    worker/core model rather than being asserted.
//  - Host CPU: paper Fig 5 / Section VII-d — one 2.6 GHz server core
//    sustains roughly 1/2 to 2/3 of a 200 Gbit/s link with per-datagram
//    processing, and a production middleware (UCX) datapath with software
//    reliability is substantially slower than a bare chunked-RC datapath.
//
// All numbers are per 'chunk event' (one CQE, one posted WR, one control
// message, ...), independent of chunk size: the work is bookkeeping, not
// byte touching (bytes move via the NIC DMA engine).
#pragma once

#include "src/exec/worker.hpp"

namespace mccl::exec {

struct DatapathCosts {
  // Receive path, per chunk CQE: poll CQE, bitmap update, repost the recv
  // WR, and (UD only) post the staging->user DMA copy.
  Cost recv_chunk_ud;
  Cost recv_chunk_uc;
  // Send path.
  Cost send_post;  // build + post one send WR
  Cost doorbell;   // NIC doorbell update, amortized by batching
  // Control plane (barrier messages, chain tokens, handshake, fetch regs).
  Cost control;
  // Reliability slow path, per missing chunk (bitmap scan + RDMA Read post).
  Cost fetch_post;
  // Reduction, per 64 B of data (ring reduce-scatter host-side math).
  Cost reduce_per_64b;

  double ghz = 1.0;  // clock the costs are meant to run at
};

/// BlueField-3 / ConnectX-7 Datapath Accelerator (Table I calibration).
inline DatapathCosts dpa_costs() {
  DatapathCosts c;
  c.recv_chunk_ud = {113, 971};  // 1084 cycles/CQE, IPC ~0.10
  c.recv_chunk_uc = {66, 532};   // 598 cycles/CQE,  IPC ~0.11
  c.send_post = {40, 180};
  c.doorbell = {20, 160};
  c.control = {90, 410};
  c.fetch_post = {60, 240};
  c.reduce_per_64b = {4, 4};   // ~40 GB/s summation
  c.ghz = 1.8;
  return c;
}

/// Bare-metal host-CPU datapath: custom chunked receive engine without a
/// software reliability layer (the faster single-thread baseline in Fig 5).
inline DatapathCosts cpu_costs() {
  DatapathCosts c;
  c.recv_chunk_ud = {150, 450};  // 600 cycles/CQE @ 2.6 GHz -> ~142 Gbit/s
  c.recv_chunk_uc = {90, 230};
  c.send_post = {35, 105};
  c.doorbell = {15, 90};
  c.control = {70, 280};
  c.fetch_post = {50, 170};
  c.reduce_per_64b = {2, 2};   // AVX-class ~40 GB/s summation
  c.ghz = 2.6;
  return c;
}

/// Production point-to-point middleware datapath (UCX-like) running UD
/// segmentation/reassembly *plus* software reliability — the slower
/// single-thread baseline in Fig 5.
inline DatapathCosts cpu_middleware_costs() {
  DatapathCosts c = cpu_costs();
  c.recv_chunk_ud = {380, 820};  // 1200 cycles/CQE -> ~71 Gbit/s
  c.recv_chunk_uc = {250, 500};
  c.send_post = {90, 210};
  c.ghz = 2.6;
  return c;
}

}  // namespace mccl::exec
