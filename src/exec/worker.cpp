#include "src/exec/worker.hpp"

#include <algorithm>

#include "src/telemetry/telemetry.hpp"

namespace mccl::exec {

Complex::Complex(sim::Engine& engine, Config config)
    : engine_(engine), config_(config) {
  MCCL_CHECK(config.cores >= 1 && config.threads_per_core >= 1);
  MCCL_CHECK(config.ghz > 0);
  cores_.resize(config.cores);
}

void Complex::set_telemetry(telemetry::Telemetry* telem, std::int32_t node,
                            const char* engine_name) {
  telem_ = telem;
  telem_node_ = node;
  telem_engine_ = engine_name;
}

void Complex::set_cost_scale(double scale) {
  MCCL_CHECK(scale >= 1.0);
  if (scale == cost_scale_) return;
  const bool was_straggling = cost_scale_ > 1.0;
  cost_scale_ = scale;
  if (telem_ == nullptr) return;
  // Cold path: scale transitions come from the fault timeline, never from
  // per-CQE processing, so the registry lookup per transition is fine.
  telem_->metrics
      .gauge("worker.straggler_active",
             {{"host", std::to_string(telem_node_)},
              {"engine", telem_engine_}})
      .set(scale > 1.0 ? scale : 0.0);
  const bool straggling = scale > 1.0;
  if (straggling != was_straggling)
    telem_->recorder.record(
        engine_.now(), telem_node_, telemetry::EventCat::kFault,
        straggling ? "straggler_exec_begin" : "straggler_exec_end",
        static_cast<std::uint64_t>(scale),
        static_cast<std::uint64_t>(telem_engine_[0]));  // 'c'pu vs 'd'pa
}

Worker& Complex::create_worker() {
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    if (cores_[c].workers < config_.threads_per_core)
      return create_worker_on(c);
  }
  MCCL_CHECK_MSG(false, "compute complex out of hardware threads");
  __builtin_unreachable();
}

Worker& Complex::create_worker_on(std::size_t core) {
  MCCL_CHECK(core < cores_.size());
  MCCL_CHECK_MSG(cores_[core].workers < config_.threads_per_core,
                 "core out of hardware threads");
  ++cores_[core].workers;
  workers_.push_back(std::make_unique<Worker>(*this, core));
  return *workers_.back();
}

void Complex::flush_trace() {
  for (auto& w : workers_) w->flush_trace();
}

Worker::Worker(Complex& complex, std::size_t core_index)
    : complex_(complex), core_(core_index) {}

Worker::~Worker() { flush_trace(); }

void Worker::set_trace(telemetry::Tracer* tracer, telemetry::TrackId track) {
  tracer_ = tracer;
  trace_track_ = track;
}

void Worker::flush_trace() {
  if (!span_open_) return;
  span_open_ = false;
  if (tracer_ != nullptr && tracer_->enabled())
    tracer_->complete(trace_track_, "busy", span_start_, span_end_, "exec");
}

void Worker::subscribe(rdma::Cq& cq, CqeHandler handler, CqeCostFn cost_of) {
  subs_[&cq] = Subscription{std::move(handler), std::move(cost_of)};
  cq.set_consumer(this);
  // Drain anything already queued.
  while (!cq.empty()) on_cqe(cq);
}

void Worker::subscribe(rdma::Cq& cq, CqeHandler handler, Cost per_cqe) {
  subscribe(cq, std::move(handler),
            [per_cqe](const rdma::Cqe&) { return per_cqe; });
}

void Worker::on_cqe(rdma::Cq& cq) {
  if (cq.empty()) return;
  auto it = subs_.find(&cq);
  MCCL_CHECK_MSG(it != subs_.end(), "CQE on unsubscribed CQ");
  const rdma::Cqe cqe = cq.pop();
  ++cqes_seen_;
  Subscription& sub = it->second;
  // sub aliases a node-stable subs_ slot that outlives every posted task.
  // mccl-lint: allow(lambda-escape) node-stable slot owned by this Worker
  post(sub.cost_of(cqe), [&sub, cqe] { sub.handler(cqe); });
}

void Worker::pump() {
  if (running_ || queue_.empty()) return;
  running_ = true;
  // The task stays at the head of the queue until its completion event
  // fires: the event captures only `this` (8 bytes, always inline) instead
  // of relocating the callback into the engine. Posts made meanwhile go
  // behind it, so FIFO order is preserved.
  const Cost cost = queue_.front().cost;

  sim::Engine& engine = complex_.engine_;
  const double ghz = complex_.config_.ghz;
  const Time ready = std::max(engine.now(), thread_free_);
  // cost_scale_ > 1 while the host is a straggler (fault injection).
  const double scale = complex_.cost_scale_;
  const Time instr_time = cycles_to_time(cost.instr * scale, ghz);
  const Time stall_time = cycles_to_time(cost.stall * scale, ghz);
  // Issue cycles contend on the core's shared pipeline; stall cycles only
  // block this hardware thread (they overlap with other workers' issues).
  const Time issue_done =
      complex_.cores_[core_].issue.acquire(ready, instr_time);
  thread_free_ = issue_done + stall_time;

  total_instr_ += cost.instr;
  total_stall_ += cost.stall;
  busy_time_ += thread_free_ - ready;
  ++tasks_done_;

  if (tracer_ != nullptr && tracer_->enabled() && thread_free_ > ready) {
    if (span_open_ && ready > span_end_) flush_trace();
    if (!span_open_) {
      span_open_ = true;
      span_start_ = ready;
    }
    span_end_ = thread_free_;
  }

  engine.schedule_at(thread_free_, [this] { run_front(); });
}

void Worker::run_front() {
  Task task = std::move(queue_.front());
  queue_.pop_front();
  task.fn();
  running_ = false;
  pump();
}

double Worker::ipc() const {
  if (busy_time_ <= 0) return 0.0;
  const double busy_cycles =
      static_cast<double>(busy_time_) * complex_.ghz() / 1000.0;
  return total_instr_ / busy_cycles;
}

void Worker::reset_stats() {
  tasks_done_ = 0;
  cqes_seen_ = 0;
  total_instr_ = 0;
  total_stall_ = 0;
  busy_time_ = 0;
}

}  // namespace mccl::exec
